//===- tests/txn_mvcc_test.cpp - MVCC snapshot-read battery ------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// The snapshot-isolation battery for transactional reads (src/txn +
/// src/txn/MvccStore): the classic anomalies one by one — non-repeatable
/// read, read skew across shards in one scope, lost update (permitted
/// under plain query(), prevented by queryForUpdate()), and phantom
/// behavior (stable within a snapshot, visible to for-update reads) —
/// then the secondary chain directories that give non-key snapshot
/// reads an access path (directory-served visit counts, read skew and
/// phantom stability through a directory, survival across migrateTo) —
/// plus the mechanical guarantees underneath: read-only scopes acquire
/// zero physical locks (sampled lock counters), never die and never
/// retry, commit with sequence 0 (no clock movement), and version
/// reclamation is bounded by the minimum active snapshot. Ends with the
/// fig5 txn-panel regression (reader scopes track bare prepared reads)
/// and the snapshot-consistency stress oracle, which the nightly
/// TSan/ASan stress lane runs at elevated iteration counts.
///
//===----------------------------------------------------------------------===//

#include "StressHarness.h"
#include "autotune/Autotuner.h"
#include "sync/CommitClock.h"
#include "txn/MvccStore.h"
#include "txn/Transaction.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CRS_MVCC_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CRS_MVCC_SANITIZED 1
#endif
#endif

using namespace crs;

namespace {

Tuple key(const RelationSpec &Spec, int64_t S, int64_t D) {
  return Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                    {Spec.col("dst"), Value::ofInt(D)}});
}

Tuple weight(const RelationSpec &Spec, int64_t W) {
  return Tuple::of({{Spec.col("weight"), Value::ofInt(W)}});
}

RepresentationConfig splitStriped(uint32_t Stripes = 64) {
  return makeGraphRepresentation({GraphShape::Split,
                                  PlacementSchemeKind::Striped, Stripes,
                                  ContainerKind::ConcurrentHashMap,
                                  ContainerKind::TreeMap});
}

struct Handles {
  PreparedQuery Succ;
  PreparedQuery Exact;
  PreparedInsert Ins;
  PreparedRemove Rem;
  explicit Handles(ConcurrentRelation &R) {
    const RelationSpec &Spec = R.spec();
    Succ = R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
    Exact = R.prepareQuery(Spec.cols({"src", "dst"}), Spec.cols({"weight"}));
    Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
    Rem = R.prepareRemove(Spec.cols({"src", "dst"}));
  }
};

/// Commits remove(S,D) + insert(S,D,W) as one scope — the "update" all
/// the anomaly tests race against.
void commitRewrite(ConcurrentRelation &R, Handles &H, int64_t S, int64_t D,
                   int64_t W) {
  ASSERT_TRUE(runTransaction(R, [&](Transaction &T) {
    if (!T.remove(H.Rem, {Value::ofInt(S), Value::ofInt(D)}))
      return true;
    if (!T.insert(H.Ins,
                  {Value::ofInt(S), Value::ofInt(D), Value::ofInt(W)}))
      return true;
    return true;
  }));
}

/// The weight a read-only scope sees at (S,D), or -1 if absent.
int64_t readWeight(Transaction &T, Handles &H, const RelationSpec &Spec,
                   int64_t S, int64_t D) {
  int64_t W = -1;
  EXPECT_TRUE(T.query(H.Exact, {Value::ofInt(S), Value::ofInt(D)},
                      [&](const Tuple &Tp) {
                        W = Tp.get(Spec.col("weight")).asInt();
                      }));
  return W;
}

uint64_t totalAcquisitions(const RelationStatistics &Stats) {
  uint64_t N = 0;
  for (const NodeLockTraffic &T : Stats.Nodes)
    N += T.Acquisitions;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Anomaly battery
//===----------------------------------------------------------------------===//

TEST(Mvcc, NonRepeatableReadPrevented) {
  RepresentationConfig C = splitStriped();
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  ASSERT_TRUE(R.insert(key(Spec, 1, 2), weight(Spec, 10)));

  Transaction T(R);
  EXPECT_GT(T.snapshotSeq(), 0u);
  EXPECT_EQ(readWeight(T, H, Spec, 1, 2), 10);

  // A rival commits an update between the two reads.
  std::thread Writer([&] { commitRewrite(R, H, 1, 2, 99); });
  Writer.join();
  EXPECT_EQ(R.query(key(Spec, 1, 2), Spec.cols({"weight"})).size(), 1u);

  // The re-read repeats exactly: same snapshot, same value.
  EXPECT_EQ(readWeight(T, H, Spec, 1, 2), 10);
  EXPECT_TRUE(T.commit());
  // Read-only commits stamp no sequence and move no clock.
  EXPECT_EQ(T.commitSeq(), 0u);

  // A scope opened after the rival's commit sees the new version.
  Transaction T2(R);
  EXPECT_EQ(readWeight(T2, H, Spec, 1, 2), 99);
  EXPECT_TRUE(T2.commit());
}

TEST(Mvcc, ReadSkewPreventedAcrossShards) {
  ShardedRelation SR(splitStriped(), 2);
  const RelationSpec &Spec = SR.spec();
  constexpr int64_t NumAccounts = 8, Initial = 100;
  for (int64_t A = 0; A < NumAccounts; ++A)
    SR.insert(key(Spec, A, 0), weight(Spec, Initial));
  ShardedQuery Balance =
      SR.prepareQuery(Spec.cols({"src", "dst"}), Spec.cols({"weight"}));
  ShardedInsert Put = SR.prepareInsert(Spec.cols({"src", "dst"}));
  ShardedRemove Drop = SR.prepareRemove(Spec.cols({"src", "dst"}));
  ColumnId WeightCol = Spec.col("weight");

  // The reader opens first and reads account 0 at its snapshot.
  ShardedTransaction Reader(SR);
  int64_t Bal0 = -1;
  ASSERT_TRUE(Reader.query(Balance, {Value::ofInt(0), Value::ofInt(0)},
                           [&](const Tuple &T) {
                             Bal0 = T.get(WeightCol).asInt();
                           }));
  EXPECT_EQ(Bal0, Initial);

  // A rival transfers 0 → 5 (accounts hash to different shards often;
  // either way the transfer is one atomic cross-account commit).
  std::thread Writer([&] {
    EXPECT_TRUE(runTransaction(SR, [&](ShardedTransaction &T) {
      int64_t A = -1, B = -1;
      if (!T.queryForUpdate(Balance, {Value::ofInt(0), Value::ofInt(0)},
                            [&](const Tuple &Tp) {
                              A = Tp.get(WeightCol).asInt();
                            }) ||
          !T.queryForUpdate(Balance, {Value::ofInt(5), Value::ofInt(0)},
                            [&](const Tuple &Tp) {
                              B = Tp.get(WeightCol).asInt();
                            }))
        return true;
      if (!T.remove(Drop, {Value::ofInt(0), Value::ofInt(0)}) ||
          !T.insert(Put, {Value::ofInt(0), Value::ofInt(0),
                          Value::ofInt(A - 40)}) ||
          !T.remove(Drop, {Value::ofInt(5), Value::ofInt(0)}) ||
          !T.insert(Put, {Value::ofInt(5), Value::ofInt(0),
                          Value::ofInt(B + 40)}))
        return true;
      return true;
    }));
  });
  Writer.join();

  // Read skew would show the old 0 with the new 5 (sum 240). The
  // snapshot shows the pre-transfer 5 instead: the reader's whole sum
  // is conserved even though the reads straddle shards and the commit.
  int64_t Sum = 0;
  for (int64_t A = 0; A < NumAccounts; ++A)
    ASSERT_TRUE(Reader.query(Balance, {Value::ofInt(A), Value::ofInt(0)},
                             [&](const Tuple &T) {
                               Sum += T.get(WeightCol).asInt();
                             }));
  EXPECT_EQ(Sum, NumAccounts * Initial);
  EXPECT_TRUE(Reader.commit());
  EXPECT_EQ(Reader.commitSeq(), 0u);

  // A fresh scope sees the transferred state, still conserved.
  ShardedTransaction After(SR);
  int64_t NewSum = 0, New0 = -1;
  for (int64_t A = 0; A < NumAccounts; ++A)
    ASSERT_TRUE(After.query(Balance, {Value::ofInt(A), Value::ofInt(0)},
                            [&](const Tuple &T) {
                              int64_t W = T.get(WeightCol).asInt();
                              NewSum += W;
                              if (A == 0)
                                New0 = W;
                            }));
  EXPECT_EQ(NewSum, NumAccounts * Initial);
  EXPECT_EQ(New0, Initial - 40);
  EXPECT_TRUE(After.commit());
}

TEST(Mvcc, ShardedSnapshotReadAttributesAccessPathPerShard) {
  // The sharded scope's query() walks each touched shard's version
  // store independently, so its access-path report is per shard: one
  // (shard, stats) entry per store the read actually visited.
  constexpr unsigned NumShards = 3;
  constexpr int64_t NumSrcs = 30;
  ShardedRelation SR(splitStriped(), NumShards);
  const RelationSpec &Spec = SR.spec();
  for (int64_t S = 0; S < NumSrcs; ++S)
    for (int64_t D = 0; D < 2; ++D)
      ASSERT_TRUE(SR.insert(key(Spec, S, D), weight(Spec, S)));
  ShardedQuery Succ =
      SR.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  ShardedQuery Pred =
      SR.prepareQuery(Spec.cols({"dst"}), Spec.cols({"src", "weight"}));

  // A routed read (dom covers the routing key) touches exactly one
  // shard and reports exactly one entry — the routed shard's.
  {
    ShardedTransaction T(SR);
    uint32_t N = 0;
    ASSERT_TRUE(T.query(Succ, {Value::ofInt(7)}, nullptr, &N));
    EXPECT_EQ(N, 2u);
    const auto &Stats = T.lastSnapshotReadStats();
    ASSERT_EQ(Stats.size(), 1u);
    EXPECT_EQ(Stats[0].first, SR.shardOf(key(Spec, 7, 0)));
    ASSERT_TRUE(T.commit());
  }

  // A fan-out read reports every shard, ascending; the first non-key
  // read pays each shard's documented full scan (leaving a {dst}
  // directory behind per shard)...
  {
    ShardedTransaction T(SR);
    uint32_t N = 0;
    ASSERT_TRUE(T.query(Pred, {Value::ofInt(1)}, nullptr, &N));
    EXPECT_EQ(N, static_cast<uint32_t>(NumSrcs));
    const auto &Stats = T.lastSnapshotReadStats();
    ASSERT_EQ(Stats.size(), NumShards);
    for (unsigned I = 0; I < NumShards; ++I) {
      EXPECT_EQ(Stats[I].first, I); // ascending shard order
      EXPECT_TRUE(Stats[I].second.FullScan) << "shard " << I;
      EXPECT_FALSE(Stats[I].second.DirectoryServed) << "shard " << I;
    }
    ASSERT_TRUE(T.commit());
  }

  // ...and from then on every shard serves through its own directory,
  // each visiting only its matching chains: the per-shard chain counts
  // sum to the match count, attributing the work shard by shard.
  {
    ShardedTransaction T(SR);
    uint32_t N = 0;
    ASSERT_TRUE(T.query(Pred, {Value::ofInt(1)}, nullptr, &N));
    EXPECT_EQ(N, static_cast<uint32_t>(NumSrcs));
    const auto &Stats = T.lastSnapshotReadStats();
    ASSERT_EQ(Stats.size(), NumShards);
    uint32_t Chains = 0;
    for (unsigned I = 0; I < NumShards; ++I) {
      EXPECT_TRUE(Stats[I].second.DirectoryServed) << "shard " << I;
      EXPECT_FALSE(Stats[I].second.FullScan) << "shard " << I;
      Chains += Stats[I].second.ChainsVisited;
    }
    EXPECT_EQ(Chains, static_cast<uint32_t>(NumSrcs));
    // The report is per query: a subsequent routed read replaces the
    // fan-out's three entries with the one shard it touched.
    ASSERT_TRUE(T.query(Succ, {Value::ofInt(3)}, nullptr, &N));
    EXPECT_EQ(T.lastSnapshotReadStats().size(), 1u);
    ASSERT_TRUE(T.commit());
  }
}

TEST(Mvcc, LostUpdatePermittedByQueryPreventedByQueryForUpdate) {
  RepresentationConfig C = splitStriped();
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  ASSERT_TRUE(R.insert(key(Spec, 1, 1), weight(Spec, 10)));

  // Plain query() reads the snapshot without locking the row, so an
  // increment built on it can overwrite a rival's committed increment:
  // the classic lost update, permitted by snapshot isolation. The
  // interleaving is forced deterministically — the rival runs to
  // completion between this scope's read and its write-back.
  {
    Transaction T(R);
    int64_t V = readWeight(T, H, Spec, 1, 1);
    EXPECT_EQ(V, 10);
    std::thread Rival([&] { commitRewrite(R, H, 1, 1, 10 + 1); });
    Rival.join();
    ASSERT_TRUE(T.remove(H.Rem, {Value::ofInt(1), Value::ofInt(1)}));
    ASSERT_TRUE(T.insert(H.Ins, {Value::ofInt(1), Value::ofInt(1),
                                 Value::ofInt(V + 1)}));
    ASSERT_TRUE(T.commit());
  }
  {
    Transaction Check(R);
    // Both scopes incremented, but one increment is lost: 11, not 12.
    EXPECT_EQ(readWeight(Check, H, Spec, 1, 1), 11);
    EXPECT_TRUE(Check.commit());
  }

  // queryForUpdate() takes the exclusive lock at read time, so the
  // same shape serializes: the rival's read-modify-write blocks (or
  // dies and retries) until this scope commits — no update is lost.
  ASSERT_TRUE(R.remove(key(Spec, 1, 1)));
  ASSERT_TRUE(R.insert(key(Spec, 1, 1), weight(Spec, 10)));
  {
    Transaction T(R);
    int64_t V = -1;
    ASSERT_TRUE(T.queryForUpdate(H.Exact,
                                 {Value::ofInt(1), Value::ofInt(1)},
                                 [&](const Tuple &Tp) {
                                   V = Tp.get(Spec.col("weight")).asInt();
                                 }));
    EXPECT_EQ(V, 10);
    // The rival starts now but cannot pass its own queryForUpdate until
    // this scope's locks release at commit.
    std::thread Rival([&] {
      EXPECT_TRUE(runTransaction(R, [&](Transaction &T2) {
        int64_t W = -1;
        if (!T2.queryForUpdate(H.Exact, {Value::ofInt(1), Value::ofInt(1)},
                               [&](const Tuple &Tp) {
                                 W = Tp.get(Spec.col("weight")).asInt();
                               }))
          return true; // died: retried with aged patience
        if (!T2.remove(H.Rem, {Value::ofInt(1), Value::ofInt(1)}))
          return true;
        if (!T2.insert(H.Ins, {Value::ofInt(1), Value::ofInt(1),
                               Value::ofInt(W + 1)}))
          return true;
        return true;
      }));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(T.remove(H.Rem, {Value::ofInt(1), Value::ofInt(1)}));
    ASSERT_TRUE(T.insert(H.Ins, {Value::ofInt(1), Value::ofInt(1),
                                 Value::ofInt(V + 1)}));
    ASSERT_TRUE(T.commit());
    Rival.join();
  }
  {
    Transaction Check(R);
    // Both increments survive: 12.
    EXPECT_EQ(readWeight(Check, H, Spec, 1, 1), 12);
    EXPECT_TRUE(Check.commit());
  }
}

TEST(Mvcc, PhantomsStableInSnapshotVisibleForUpdate) {
  RepresentationConfig C = splitStriped();
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  for (int64_t D = 0; D < 3; ++D)
    ASSERT_TRUE(R.insert(key(Spec, 5, D), weight(Spec, D)));

  Transaction T(R);
  uint32_t N1 = 0;
  ASSERT_TRUE(T.query(H.Succ, {Value::ofInt(5)}, nullptr, &N1));
  EXPECT_EQ(N1, 3u);

  // A rival inserts a new row matching the predicate src=5.
  std::thread Writer([&] {
    EXPECT_TRUE(runTransaction(R, [&](Transaction &W) {
      W.insert(H.Ins, {Value::ofInt(5), Value::ofInt(99),
                       Value::ofInt(999)});
      return true;
    }));
  });
  Writer.join();

  // Within the snapshot the predicate is stable: the phantom does not
  // appear, however often the query repeats.
  uint32_t N2 = 0;
  ASSERT_TRUE(T.query(H.Succ, {Value::ofInt(5)}, nullptr, &N2));
  EXPECT_EQ(N2, 3u);

  // queryForUpdate reads the *current* committed state under locks, and
  // there is no predicate locking: the phantom IS visible to it, inside
  // the very same scope. Serializability for predicate-dependent
  // read-modify-write therefore requires for-update reads of every row
  // the decision depends on — the documented phantom contract
  // (src/txn/Transaction.h).
  uint32_t N3 = 0;
  ASSERT_TRUE(T.queryForUpdate(H.Succ, {Value::ofInt(5)}, nullptr, &N3));
  EXPECT_EQ(N3, 4u);
  EXPECT_TRUE(T.commit());
}

//===----------------------------------------------------------------------===//
// Access paths: secondary chain directories
//===----------------------------------------------------------------------===//

TEST(Mvcc, DirectoryServedReadVisitsOnlyMatchingChains) {
  RepresentationConfig C = splitStriped();
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  constexpr int64_t Fanout = 4;
  for (int64_t D = 0; D < Fanout; ++D)
    ASSERT_TRUE(R.insert(key(Spec, 1, D), weight(Spec, D)));
  for (int64_t S = 2; S < 502; ++S)
    ASSERT_TRUE(R.insert(key(Spec, S, 0), weight(Spec, S)));

  // First successor read may pay the documented full scan once; it
  // leaves the {src} directory behind (lazy creation on fallback miss).
  {
    Transaction Warm(R);
    ASSERT_TRUE(Warm.query(H.Succ, {Value::ofInt(1)}));
    ASSERT_TRUE(Warm.commit());
  }

  // From now on the read is directory-served and visits exactly the
  // chains whose sub-key matches — the O(store) scan is gone. This is
  // the issue's acceptance assertion, on counters, not wall clocks.
  {
    Transaction T(R);
    uint32_t N = 0;
    ASSERT_TRUE(T.query(H.Succ, {Value::ofInt(1)}, nullptr, &N));
    EXPECT_EQ(N, 4u);
    const SnapshotQueryStats &St = T.lastSnapshotReadStats();
    EXPECT_TRUE(St.DirectoryServed);
    EXPECT_FALSE(St.FullScan);
    EXPECT_EQ(St.ChainsVisited, 4u);
    ASSERT_TRUE(T.commit());
  }

  // Growing the store by another 500 unrelated chains must not change
  // what the directory-served read visits.
  for (int64_t S = 1000; S < 1500; ++S)
    ASSERT_TRUE(R.insert(key(Spec, S, 0), weight(Spec, S)));
  {
    Transaction T(R);
    uint32_t N = 0;
    ASSERT_TRUE(T.query(H.Succ, {Value::ofInt(1)}, nullptr, &N));
    EXPECT_EQ(N, 4u);
    const SnapshotQueryStats &St = T.lastSnapshotReadStats();
    EXPECT_TRUE(St.DirectoryServed);
    EXPECT_EQ(St.ChainsVisited, 4u);
    ASSERT_TRUE(T.commit());
  }

  // Control: a point read routes through the primary directory, and a
  // read binding no key column at all still full-scans (documented).
  {
    Transaction T(R);
    ASSERT_TRUE(T.query(H.Exact, {Value::ofInt(1), Value::ofInt(0)}));
    EXPECT_FALSE(T.lastSnapshotReadStats().DirectoryServed);
    EXPECT_FALSE(T.lastSnapshotReadStats().FullScan);
    ASSERT_TRUE(T.commit());
  }
}

TEST(Mvcc, NonKeyReadSkewPreventedThroughDirectory) {
  RepresentationConfig C = splitStriped();
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  constexpr int64_t NumAccounts = 8, Initial = 100;
  for (int64_t A = 0; A < NumAccounts; ++A)
    ASSERT_TRUE(R.insert(key(Spec, A, 0), weight(Spec, Initial)));
  PreparedQuery ByDst =
      R.prepareQuery(Spec.cols({"dst"}), Spec.cols({"src", "weight"}));
  ColumnId WeightCol = Spec.col("weight");

  auto sumAll = [&](Transaction &T, int64_t &Rows) {
    int64_t Sum = 0;
    Rows = 0;
    EXPECT_TRUE(T.query(ByDst, {Value::ofInt(0)}, [&](const Tuple &Tp) {
      Sum += Tp.get(WeightCol).asInt();
      ++Rows;
    }));
    return Sum;
  };

  { // leave the {dst} directory warm
    Transaction Warm(R);
    int64_t Rows = 0;
    EXPECT_EQ(sumAll(Warm, Rows), NumAccounts * Initial);
    ASSERT_TRUE(Warm.commit());
  }

  Transaction Reader(R);
  int64_t Rows1 = 0;
  EXPECT_EQ(sumAll(Reader, Rows1), NumAccounts * Initial);
  EXPECT_EQ(Rows1, NumAccounts);
  EXPECT_TRUE(Reader.lastSnapshotReadStats().DirectoryServed);

  // A rival moves 40 from account 2 to account 6, one atomic commit.
  std::thread Writer([&] {
    EXPECT_TRUE(runTransaction(R, [&](Transaction &T) {
      int64_t A = -1, B = -1;
      if (!T.queryForUpdate(H.Exact, {Value::ofInt(2), Value::ofInt(0)},
                            [&](const Tuple &Tp) {
                              A = Tp.get(WeightCol).asInt();
                            }) ||
          !T.queryForUpdate(H.Exact, {Value::ofInt(6), Value::ofInt(0)},
                            [&](const Tuple &Tp) {
                              B = Tp.get(WeightCol).asInt();
                            }))
        return true;
      if (!T.remove(H.Rem, {Value::ofInt(2), Value::ofInt(0)}) ||
          !T.insert(H.Ins, {Value::ofInt(2), Value::ofInt(0),
                            Value::ofInt(A - 40)}) ||
          !T.remove(H.Rem, {Value::ofInt(6), Value::ofInt(0)}) ||
          !T.insert(H.Ins, {Value::ofInt(6), Value::ofInt(0),
                            Value::ofInt(B + 40)}))
        return true;
      return true;
    }));
  });
  Writer.join();

  // The open snapshot re-sums through the directory: conserved, and no
  // torn transfer (a debit without its credit) can ever show.
  int64_t Rows2 = 0;
  EXPECT_EQ(sumAll(Reader, Rows2), NumAccounts * Initial);
  EXPECT_EQ(Rows2, NumAccounts);
  EXPECT_TRUE(Reader.lastSnapshotReadStats().DirectoryServed);
  EXPECT_TRUE(Reader.commit());

  // A fresh snapshot sees the transferred state, still conserved.
  Transaction After(R);
  int64_t Rows3 = 0;
  EXPECT_EQ(sumAll(After, Rows3), NumAccounts * Initial);
  EXPECT_EQ(Rows3, NumAccounts);
  EXPECT_TRUE(After.commit());
}

TEST(Mvcc, PhantomStableThroughDirectoryUnderMidSnapshotInsert) {
  // A rival's insert creates a brand-new chain and links it into the
  // {src} directory while this snapshot is open: the directory walk
  // sees the link immediately, but version visibility still hides the
  // row — predicate stability is a property of the snapshot, not of
  // directory membership.
  RepresentationConfig C = splitStriped();
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  for (int64_t D = 0; D < 3; ++D)
    ASSERT_TRUE(R.insert(key(Spec, 7, D), weight(Spec, D)));
  {
    Transaction Warm(R);
    ASSERT_TRUE(Warm.query(H.Succ, {Value::ofInt(7)}));
    ASSERT_TRUE(Warm.commit());
  }

  Transaction T(R);
  uint32_t N1 = 0;
  ASSERT_TRUE(T.query(H.Succ, {Value::ofInt(7)}, nullptr, &N1));
  EXPECT_EQ(N1, 3u);
  EXPECT_TRUE(T.lastSnapshotReadStats().DirectoryServed);

  std::thread Rival([&] {
    EXPECT_TRUE(runTransaction(R, [&](Transaction &W) {
      W.insert(H.Ins, {Value::ofInt(7), Value::ofInt(55),
                       Value::ofInt(555)});
      return true;
    }));
  });
  Rival.join();

  uint32_t N2 = 0;
  ASSERT_TRUE(T.query(H.Succ, {Value::ofInt(7)}, nullptr, &N2));
  EXPECT_EQ(N2, 3u); // the phantom chain is linked but not visible
  EXPECT_TRUE(T.lastSnapshotReadStats().DirectoryServed);
  EXPECT_TRUE(T.commit());

  Transaction T2(R);
  uint32_t N3 = 0;
  ASSERT_TRUE(T2.query(H.Succ, {Value::ofInt(7)}, nullptr, &N3));
  EXPECT_EQ(N3, 4u); // a later snapshot reads it through the same link
  EXPECT_TRUE(T2.lastSnapshotReadStats().DirectoryServed);
  EXPECT_TRUE(T2.commit());
}

TEST(Mvcc, DirectoryServesAcrossMigrateTo) {
  // migrateTo swaps the compiled representation underneath the
  // relation; the version store (and its directories) is orthogonal to
  // the representation and must keep serving the open snapshot
  // unperturbed, mid-scope.
  RepresentationConfig C = splitStriped();
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  for (int64_t D = 0; D < 5; ++D)
    ASSERT_TRUE(R.insert(key(Spec, 3, D), weight(Spec, 10 * D)));
  {
    Transaction Warm(R);
    ASSERT_TRUE(Warm.query(H.Succ, {Value::ofInt(3)}));
    ASSERT_TRUE(Warm.commit());
  }

  Transaction T(R);
  uint32_t N1 = 0;
  ASSERT_TRUE(T.query(H.Succ, {Value::ofInt(3)}, nullptr, &N1));
  EXPECT_EQ(N1, 5u);
  EXPECT_TRUE(T.lastSnapshotReadStats().DirectoryServed);

  ASSERT_TRUE(R.migrateTo(splitStriped(8)).Ok);

  uint32_t N2 = 0;
  ASSERT_TRUE(T.query(H.Succ, {Value::ofInt(3)}, nullptr, &N2));
  EXPECT_EQ(N2, 5u);
  EXPECT_TRUE(T.lastSnapshotReadStats().DirectoryServed);
  EXPECT_TRUE(T.commit());

  // And the directory keeps serving new snapshots after the swap.
  Transaction T2(R);
  uint32_t N3 = 0;
  ASSERT_TRUE(T2.query(H.Succ, {Value::ofInt(3)}, nullptr, &N3));
  EXPECT_EQ(N3, 5u);
  EXPECT_TRUE(T2.lastSnapshotReadStats().DirectoryServed);
  EXPECT_TRUE(T2.commit());
}

//===----------------------------------------------------------------------===//
// Mechanics: locks, aborts, reclamation
//===----------------------------------------------------------------------===//

TEST(Mvcc, SnapshotReadsAcquireZeroLocks) {
  RepresentationConfig C = splitStriped();
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  for (int64_t S = 0; S < 8; ++S)
    for (int64_t D = 0; D < 4; ++D)
      ASSERT_TRUE(R.insert(key(Spec, S, D), weight(Spec, S + D)));

  // Warm the plan cache, then sample the lock counters and run a pile
  // of read-only scopes: the acquisition total must not move at all —
  // snapshot reads take no placement or tuple locks (the tentpole's
  // zero-lock guarantee, asserted rather than assumed). The counters
  // sample shared acquisitions 1-in-64 and count exclusive ones
  // exactly, so any lock on this path has ample chance to show.
  {
    Transaction Warm(R);
    ASSERT_TRUE(Warm.query(H.Succ, {Value::ofInt(0)}));
    ASSERT_TRUE(Warm.commit());
  }
  uint64_t Before = totalAcquisitions(R.sampleStatistics());
  for (int Round = 0; Round < 200; ++Round) {
    Transaction T(R);
    uint32_t N = 0;
    ASSERT_TRUE(T.query(H.Succ, {Value::ofInt(Round % 8)}, nullptr, &N));
    EXPECT_EQ(N, 4u);
    ASSERT_TRUE(
        T.query(H.Exact, {Value::ofInt(Round % 8), Value::ofInt(0)}));
    ASSERT_TRUE(T.commit());
    EXPECT_EQ(T.restarts(), 0u);
  }
  uint64_t After = totalAcquisitions(R.sampleStatistics());
  EXPECT_EQ(After - Before, 0u);

  // Control: the same query for-update moves the exclusive counters —
  // the zero above is a property of the snapshot path, not dead
  // instrumentation.
  {
    Transaction T(R);
    ASSERT_TRUE(T.queryForUpdate(H.Succ, {Value::ofInt(0)}));
    ASSERT_TRUE(T.commit());
  }
  uint64_t Control = totalAcquisitions(R.sampleStatistics());
  EXPECT_GT(Control - After, 0u);
}

TEST(Mvcc, ReclamationBoundedByActiveSnapshot) {
  RepresentationConfig C = splitStriped();
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  ASSERT_TRUE(R.insert(key(Spec, 1, 1), weight(Spec, 0)));
  MvccStore &Store = R.mvccStore();
  EXPECT_EQ(Store.liveVersions(), 1u);

  // Pin a snapshot, then bury the key under K committed rewrites: every
  // superseded version outlives its replacement because the pinned
  // snapshot's watermark floors reclamation — the chain grows.
  constexpr uint64_t K = 16;
  {
    Transaction Pin(R);
    EXPECT_EQ(readWeight(Pin, H, Spec, 1, 1), 0);
    EXPECT_GE(activeSnapshots(), 1u);
    std::thread Writer([&] {
      for (uint64_t I = 1; I <= K; ++I)
        commitRewrite(R, H, 1, 1, static_cast<int64_t>(I));
    });
    Writer.join();
    EXPECT_GE(Store.liveVersions(), K);
    // The pinned snapshot still reads its original version under the
    // pile — that is what the retained versions are *for*.
    EXPECT_EQ(readWeight(Pin, H, Spec, 1, 1), 0);
    EXPECT_TRUE(Pin.commit());
  }

  // Snapshot released: the next install on the chain prunes everything
  // below the advanced watermark. Reclamation is bounded, not leaked.
  commitRewrite(R, H, 1, 1, 777);
  EXPECT_LE(Store.liveVersions(), 3u);
  EXPECT_GE(Store.retired(), K);
}

TEST(Mvcc, ReadOnlyScopesNeverAbortUnderWrites) {
  RepresentationConfig C = splitStriped();
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  for (int64_t S = 0; S < 8; ++S)
    ASSERT_TRUE(R.insert(key(Spec, S, 0), weight(Spec, S)));

  // N reader threads, one writer hammering every key: wait-die never
  // touches a read-only scope (it holds nothing a writer could want),
  // so the abort and restart counters stay at exact zero.
  constexpr unsigned Readers = 3, ScopesPerReader = 200;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> ReaderAborts{0}, ReaderRestarts{0};
  std::thread Writer([&] {
    int64_t W = 1000;
    while (!Stop.load(std::memory_order_acquire))
      for (int64_t S = 0; S < 8; ++S)
        commitRewrite(R, H, S, 0, ++W);
  });
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Readers; ++T)
    Pool.emplace_back([&] {
      for (unsigned I = 0; I < ScopesPerReader; ++I) {
        Transaction Txn(R);
        bool Ok = true;
        for (int64_t S = 0; S < 8 && Ok; ++S)
          Ok = Txn.query(H.Succ, {Value::ofInt(S)});
        if (!Ok || !Txn.commit())
          ReaderAborts.fetch_add(1, std::memory_order_relaxed);
        ReaderRestarts.fetch_add(Txn.restarts(),
                                 std::memory_order_relaxed);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  Stop.store(true, std::memory_order_release);
  Writer.join();
  EXPECT_EQ(ReaderAborts.load(), 0u);
  EXPECT_EQ(ReaderRestarts.load(), 0u);
}

//===----------------------------------------------------------------------===//
// Fig5 txn-panel regression: readers track bare prepared reads
//===----------------------------------------------------------------------===//

TEST(Mvcc, ReadOnlyScopeThroughputTracksPreparedReads) {
  RepresentationConfig C = splitStriped();
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  for (int64_t S = 0; S < 64; ++S)
    for (int64_t D = 0; D < 4; ++D)
      ASSERT_TRUE(R.insert(key(Spec, S, D), weight(Spec, S + D)));

  const uint64_t Ops = stress::envU64("CRS_MVCC_BENCH_OPS", 8000);
  // Acceptance ratio in percent: snapshot point reads inside a scope
  // versus the same bare prepared point reads — like-for-like, both are
  // hash lookups (chain bucket vs compiled index). Release asks for 60%
  // (the fig5 panel budget, with slack for the scope overhead amortized
  // over 8 reads and the version-visibility check per hit); Debug and
  // sanitizer builds measure instrumentation more than the path, so the
  // bar drops to smoke-test levels. CRS_MVCC_READ_RATIO_PCT overrides
  // for bench experiments. Non-key snapshot reads (e.g. bind only src)
  // route through the version store's chain directories — O(matching
  // chains), asserted on visit counters by
  // Mvcc.DirectoryServedReadVisitsOnlyMatchingChains and charted by the
  // fig5 txn_nonkey panel — so only the point-read ratio is pinned
  // here.
#if defined(NDEBUG) && !defined(CRS_MVCC_SANITIZED)
  const uint64_t DefaultPct = 60;
#else
  const uint64_t DefaultPct = 20;
#endif
  const uint64_t Pct = stress::envU64("CRS_MVCC_READ_RATIO_PCT", DefaultPct);

  // Warm both paths (plan compiles out of the timed region).
  H.Exact.bind(0, Value::ofInt(0));
  H.Exact.bind(1, Value::ofInt(0));
  H.Exact.count();
  {
    Transaction Warm(R);
    ASSERT_TRUE(Warm.query(H.Exact, {Value::ofInt(0), Value::ofInt(0)}));
    ASSERT_TRUE(Warm.commit());
  }

  // Both loops visit the same (src, dst) sequence; every probe hits.
  using Clock = std::chrono::steady_clock;
  auto B0 = Clock::now();
  uint64_t BareRows = 0;
  for (uint64_t I = 0; I < Ops; ++I) {
    H.Exact.bind(0, Value::ofInt(static_cast<int64_t>(I % 64)));
    H.Exact.bind(1, Value::ofInt(static_cast<int64_t>(I % 4)));
    BareRows += H.Exact.count();
  }
  auto B1 = Clock::now();

  auto T0 = Clock::now();
  uint64_t TxnRows = 0;
  for (uint64_t I = 0; I < Ops; I += 8) {
    Transaction T(R);
    for (uint64_t J = I; J < I + 8 && J < Ops; ++J) {
      uint32_t N = 0;
      ASSERT_TRUE(T.query(H.Exact,
                          {Value::ofInt(static_cast<int64_t>(J % 64)),
                           Value::ofInt(static_cast<int64_t>(J % 4))},
                          nullptr, &N));
      TxnRows += N;
    }
    ASSERT_TRUE(T.commit());
  }
  auto T1 = Clock::now();
  ASSERT_EQ(TxnRows, BareRows);
  ASSERT_EQ(BareRows, Ops); // every probe is a hit

  double BareSec = std::chrono::duration<double>(B1 - B0).count();
  double TxnSec = std::chrono::duration<double>(T1 - T0).count();
  double BareOps = static_cast<double>(Ops) / BareSec;
  double TxnOps = static_cast<double>(Ops) / TxnSec;
  EXPECT_GE(TxnOps * 100.0, BareOps * static_cast<double>(Pct))
      << "snapshot point reads " << TxnOps << " ops/s vs bare prepared "
      << BareOps << " ops/s (need " << Pct
      << "%; override with CRS_MVCC_READ_RATIO_PCT)";
}

//===----------------------------------------------------------------------===//
// Snapshot-consistency stress oracle (nightly lane scales this up)
//===----------------------------------------------------------------------===//

TEST(MvccStress, SnapshotSumConservationUnderTransfers) {
  RepresentationConfig C = splitStriped();
  // Exercise cardinality-driven primary-directory sizing: the store
  // under stress should keep its bucket chain lists near-singleton.
  C.ExpectedCardinality = 1024;
  ConcurrentRelation R(C);
  stress::SnapshotStressOptions Opts;
  stress::SnapshotStressReport Rep = stress::runSnapshotStressWithOracle(
      R, Opts);
  EXPECT_TRUE(Rep.Errors.empty())
      << Rep.Errors.size() << " violations; first: " << Rep.Errors.front()
      << "; " << Rep.hint();
  EXPECT_GT(Rep.Checks, 0u);
  EXPECT_GE(Rep.Transfers, Opts.Transfers);
  // installRemove's idempotent-replay tolerance must never fire outside
  // recovery, and the chain lists must stay short (64 accounts hashed
  // over ≥512 buckets): both counters, not vibes.
  EXPECT_EQ(Rep.RemoveNoops, 0u);
  EXPECT_LE(Rep.MaxBucketChainLen, 4u);
  ValidationResult V = R.verifyConsistency();
  EXPECT_TRUE(V.ok()) << V.str();
}

TEST(MvccStress, SnapshotSumConservationAcrossShards) {
  ShardedRelation SR(splitStriped(), 3);
  stress::SnapshotStressOptions Opts;
  Opts.Transfers = 1200;
  stress::SnapshotStressReport Rep = stress::runSnapshotStressWithOracle(
      SR, Opts);
  EXPECT_TRUE(Rep.Errors.empty())
      << Rep.Errors.size() << " violations; first: " << Rep.Errors.front()
      << "; " << Rep.hint();
  EXPECT_GT(Rep.Checks, 0u);
  EXPECT_EQ(Rep.RemoveNoops, 0u);
  EXPECT_LE(Rep.MaxBucketChainLen, 8u);
}
