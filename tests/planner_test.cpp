//===- tests/planner_test.cpp - Query planner tests ---------------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Planner tests: every enumerated plan is statically valid (well-locked,
/// two-phase, in lock order); the paper's §5.2 dcache plans (2)–(4) are
/// regenerated structurally; the cost model prefers the plans the paper
/// says it should (hashtable lookup over scans, split-side predecessor
/// lookups over stick scans).
///
//===----------------------------------------------------------------------===//

#include "decomp/Shapes.h"
#include "lockplace/PlacementSchemes.h"
#include "plan/PlanValidity.h"
#include "plan/Planner.h"

#include <gtest/gtest.h>

using namespace crs;

namespace {

unsigned countKind(const Plan &P, PlanStmt::Kind K) {
  unsigned N = 0;
  for (const auto &St : P.Stmts)
    if (St.K == K)
      ++N;
  return N;
}

TEST(Planner, AllEnumeratedPlansAreValid) {
  RelationSpec GraphSpec = makeGraphSpec();
  RelationSpec DSpec = makeDCacheSpec();
  struct Case {
    Decomposition D;
    LockPlacement P;
  };
  std::vector<Case> Cases;
  for (GraphShape S :
       {GraphShape::Stick, GraphShape::Split, GraphShape::Diamond}) {
    Decomposition D = makeGraphDecomposition(
        GraphSpec, S,
        {ContainerKind::ConcurrentHashMap, ContainerKind::ConcurrentHashMap});
    Cases.push_back({D, makeCoarsePlacement(D)});
    Cases.push_back({D, makeFinePlacement(D)});
    Cases.push_back({D, makeStripedPlacement(D, 16)});
    Cases.push_back({D, makeSpeculativePlacement(D, 16)});
  }
  {
    Decomposition D = makeDCacheDecomposition(DSpec);
    Cases.push_back({D, makeCoarsePlacement(D)});
    Cases.push_back({D, makeFinePlacement(D)});
  }

  for (const Case &C : Cases) {
    const RelationSpec &Spec = C.D.spec();
    QueryPlanner Planner(C.D, C.P);
    // Representative query signatures: by first key column, by second,
    // full scan, and existence under the primary key.
    std::vector<std::pair<ColumnSet, ColumnSet>> Sigs;
    ColumnSet All = Spec.allColumns();
    All.forEach([&](ColumnId Col) {
      Sigs.push_back({ColumnSet::of(Col), All - ColumnSet::of(Col)});
    });
    Sigs.push_back({ColumnSet::empty(), All});
    for (auto &[DomS, Out] : Sigs) {
      auto Plans = Planner.enumerateQueryPlans(DomS, Out);
      ASSERT_FALSE(Plans.empty());
      for (const Plan &P : Plans) {
        ValidationResult R = checkPlanValidity(P);
        EXPECT_TRUE(R.ok()) << C.D.str() << "\n" << C.P.str() << "\n"
                            << P.str() << R.str();
      }
    }
    // Mutation locate plans are valid too.
    for (ColumnSet Key : Spec.minimalKeys()) {
      Plan P = Planner.planRemoveLocate(Key);
      EXPECT_TRUE(checkPlanValidity(P).ok()) << P.str();
      EXPECT_TRUE(P.ForMutation);
    }
  }
}

TEST(Planner, DCachePaperPlans) {
  // §5.2 plans (2) and (3): full iteration under the coarse placement
  // either scans the hashtable edge ρy directly, or walks ρx / xy.
  RelationSpec Spec = makeDCacheSpec();
  Decomposition D = makeDCacheDecomposition(Spec);
  LockPlacement Coarse = makeCoarsePlacement(D);
  QueryPlanner Planner(D, Coarse);

  auto Plans = Planner.enumerateQueryPlans(ColumnSet::empty(),
                                           Spec.allColumns());
  bool SawHashtablePlan = false; // plan (2): scan(scan(a, ρy), yz)
  bool SawTreePlan = false;      // plan (3): scan(scan(scan(a, ρx), xy), yz)
  for (const Plan &P : Plans) {
    unsigned Scans = countKind(P, PlanStmt::Kind::Scan);
    unsigned Locks = countKind(P, PlanStmt::Kind::Lock);
    if (Scans == 2 && Locks == 1)
      SawHashtablePlan = true;
    if (Scans == 3 && Locks == 1)
      SawTreePlan = true;
  }
  EXPECT_TRUE(SawHashtablePlan);
  EXPECT_TRUE(SawTreePlan);

  // Plan (4): the same query under the fine-grained placement takes a
  // lock per node level — 3 locks for the tree-path plan.
  LockPlacement Fine = makeFinePlacement(D);
  QueryPlanner FinePlanner(D, Fine);
  auto FinePlans = FinePlanner.enumerateQueryPlans(ColumnSet::empty(),
                                                   Spec.allColumns());
  bool SawThreeLockPlan = false;
  for (const Plan &P : FinePlans)
    if (countKind(P, PlanStmt::Kind::Scan) == 3 &&
        countKind(P, PlanStmt::Kind::Lock) == 3)
      SawThreeLockPlan = true;
  EXPECT_TRUE(SawThreeLockPlan);
}

TEST(Planner, DCacheLookupPrefersHashtableEdge) {
  // Looking up (parent, name) -> child should use the global hashtable
  // edge (one lookup) rather than two nested tree lookups.
  RelationSpec Spec = makeDCacheSpec();
  Decomposition D = makeDCacheDecomposition(Spec);
  LockPlacement P = makeFinePlacement(D);
  QueryPlanner Planner(D, P);
  Plan Best = Planner.planQuery(Spec.cols({"parent", "name"}),
                                Spec.cols({"child"}));
  // The chosen plan must traverse exactly 2 edges: ρy lookup + yz.
  unsigned Reads = countKind(Best, PlanStmt::Kind::Lookup) +
                   countKind(Best, PlanStmt::Kind::Scan);
  EXPECT_EQ(Reads, 2u) << Best.str();
}

TEST(Planner, SplitPredecessorsAvoidFullScan) {
  // On the split decomposition, find-predecessors uses the dst-side
  // index: lookup ρv, then scan the small inner container. On the
  // stick it must scan the whole top level. The cost model must price
  // the stick plan higher.
  RelationSpec Spec = makeGraphSpec();
  Decomposition Split = makeGraphDecomposition(Spec, GraphShape::Split);
  Decomposition Stick = makeGraphDecomposition(Spec, GraphShape::Stick);
  LockPlacement SplitP = makeFinePlacement(Split);
  LockPlacement StickP = makeFinePlacement(Stick);
  QueryPlanner SplitPlanner(Split, SplitP);
  QueryPlanner StickPlanner(Stick, StickP);

  ColumnSet DomS = Spec.cols({"dst"});
  ColumnSet Out = Spec.cols({"src", "weight"});
  Plan SplitBest = SplitPlanner.planQuery(DomS, Out);
  Plan StickBest = StickPlanner.planQuery(DomS, Out);
  EXPECT_LT(SplitPlanner.cost(SplitBest), StickPlanner.cost(StickBest));
  // The split plan starts with a lookup; the stick plan is forced to
  // scan the root edge.
  EXPECT_EQ(countKind(SplitBest, PlanStmt::Kind::Lookup), 1u)
      << SplitBest.str();
  EXPECT_GE(countKind(StickBest, PlanStmt::Kind::Scan), 1u)
      << StickBest.str();
}

TEST(Planner, SuccessorQueryUsesLookupOnAllShapes) {
  RelationSpec Spec = makeGraphSpec();
  for (GraphShape S :
       {GraphShape::Stick, GraphShape::Split, GraphShape::Diamond}) {
    Decomposition D = makeGraphDecomposition(Spec, S);
    LockPlacement P = makeFinePlacement(D);
    QueryPlanner Planner(D, P);
    Plan Best = Planner.planQuery(Spec.cols({"src"}),
                                  Spec.cols({"dst", "weight"}));
    // First read statement must be a lookup keyed by src.
    for (const auto &St : Best.Stmts) {
      if (St.K == PlanStmt::Kind::Lock)
        continue;
      EXPECT_EQ(St.K, PlanStmt::Kind::Lookup) << graphShapeName(S);
      break;
    }
  }
}

TEST(Planner, SpeculativePlansUseSpecStatements) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(
      Spec, GraphShape::Split,
      {ContainerKind::ConcurrentHashMap, ContainerKind::HashMap});
  LockPlacement P = makeSpeculativePlacement(D, 16);
  QueryPlanner Planner(D, P);
  Plan Best = Planner.planQuery(Spec.cols({"src"}),
                                Spec.cols({"dst", "weight"}));
  EXPECT_EQ(countKind(Best, PlanStmt::Kind::SpecLookup), 1u) << Best.str();
  // Mutations use the host-lock protocol instead of guessing.
  Plan Rm = Planner.planRemoveLocate(Spec.cols({"src", "dst"}));
  EXPECT_EQ(countKind(Rm, PlanStmt::Kind::SpecLookup), 0u) << Rm.str();
  EXPECT_TRUE(checkPlanValidity(Rm).ok());
}

TEST(Planner, RemoveLocateCoversEveryEdge) {
  RelationSpec Spec = makeGraphSpec();
  for (GraphShape S :
       {GraphShape::Stick, GraphShape::Split, GraphShape::Diamond}) {
    Decomposition D = makeGraphDecomposition(Spec, S);
    LockPlacement P = makeFinePlacement(D);
    QueryPlanner Planner(D, P);
    Plan Rm = Planner.planRemoveLocate(Spec.cols({"src", "dst"}));
    std::vector<bool> Seen(D.numEdges(), false);
    for (const auto &St : Rm.Stmts)
      if (St.K == PlanStmt::Kind::Lookup || St.K == PlanStmt::Kind::Scan)
        Seen[St.Edge] = true;
    for (EdgeId E = 0; E < D.numEdges(); ++E)
      EXPECT_TRUE(Seen[E]) << graphShapeName(S) << " edge " << E;
  }
}

TEST(PlanValidity, CatchesMissingLock) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Stick);
  LockPlacement P = makeFinePlacement(D);
  Plan Bad;
  Bad.Decomp = &D;
  Bad.Placement = &P;
  Bad.InputCols = Spec.cols({"src"});
  Bad.OutputCols = Spec.cols({"src"});
  PlanStmt Read;
  Read.K = PlanStmt::Kind::Lookup;
  Read.InVar = 0;
  Read.OutVar = 1;
  Read.Edge = 0;
  Bad.Stmts.push_back(Read);
  Bad.NumVars = 2;
  Bad.ResultVar = 1;
  ValidationResult R = checkPlanValidity(Bad);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("not covered"), std::string::npos);
}

TEST(PlanValidity, CatchesLockAfterUnlock) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Stick);
  LockPlacement P = makeFinePlacement(D);
  Plan Bad;
  Bad.Decomp = &D;
  Bad.Placement = &P;
  PlanStmt U;
  U.K = PlanStmt::Kind::Unlock;
  U.Node = 0;
  Bad.Stmts.push_back(U);
  PlanStmt L;
  L.K = PlanStmt::Kind::Lock;
  L.Node = 0;
  L.Sels.push_back(StripeSel::all());
  Bad.Stmts.push_back(L);
  Bad.NumVars = 1;
  ValidationResult R = checkPlanValidity(Bad);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("two-phase"), std::string::npos);
}

TEST(PlanValidity, CatchesLockOrderViolation) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Stick);
  LockPlacement P = makeFinePlacement(D);
  QueryPlanner Planner(D, P);
  Plan Good = Planner.planQuery(Spec.cols({"src", "dst"}),
                                Spec.cols({"weight"}));
  // Reverse the lock statements: order violation.
  Plan Bad = Good;
  std::vector<PlanStmt> Locks;
  std::vector<PlanStmt> Rest;
  for (auto &St : Bad.Stmts)
    (St.K == PlanStmt::Kind::Lock ? Locks : Rest).push_back(St);
  if (Locks.size() < 2)
    GTEST_SKIP() << "placement yields fewer than two lock statements";
  std::reverse(Locks.begin(), Locks.end());
  Bad.Stmts = Locks;
  for (auto &St : Rest)
    Bad.Stmts.push_back(St);
  ValidationResult R = checkPlanValidity(Bad);
  EXPECT_FALSE(R.ok());
}

TEST(CostModel, StripedAllLocksCostMore) {
  // Under a striped placement, a scan that must take all k stripes is
  // priced higher than the same scan under a single lock — §4.4's
  // iteration-cost tradeoff.
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Stick);
  LockPlacement Striped = makeStripedPlacement(D, 1024);
  LockPlacement Fine = makeFinePlacement(D);
  QueryPlanner SP(D, Striped);
  QueryPlanner FP(D, Fine);
  ColumnSet DomS = Spec.cols({"dst"});
  ColumnSet Out = Spec.cols({"src", "weight"});
  EXPECT_GT(SP.cost(SP.planQuery(DomS, Out)),
            FP.cost(FP.planQuery(DomS, Out)));
}

TEST(PlanPrinter, PaperStyleRendering) {
  RelationSpec Spec = makeDCacheSpec();
  Decomposition D = makeDCacheDecomposition(Spec);
  LockPlacement P = makeCoarsePlacement(D);
  QueryPlanner Planner(D, P);
  Plan Best = Planner.planQuery(ColumnSet::empty(), Spec.allColumns());
  std::string S = Best.str();
  EXPECT_NE(S.find("let _ = lock("), std::string::npos) << S;
  EXPECT_NE(S.find("scan("), std::string::npos) << S;
  EXPECT_NE(S.find(" in"), std::string::npos) << S;
}

} // namespace
