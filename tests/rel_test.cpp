//===- tests/rel_test.cpp - Relational core unit tests ------------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "decomp/Shapes.h"
#include "rel/RefRelation.h"
#include "rel/RelationSpec.h"
#include "rel/Tuple.h"
#include "rel/Value.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace crs;

namespace {

// ---------------------------------------------------------------- Value

TEST(Value, IntBasics) {
  Value V = Value::ofInt(42);
  EXPECT_TRUE(V.isInt());
  EXPECT_EQ(V.asInt(), 42);
  EXPECT_EQ(V.str(), "42");
  EXPECT_EQ(V, Value::ofInt(42));
  EXPECT_NE(V, Value::ofInt(43));
}

TEST(Value, StringInterning) {
  Value A = Value::ofString("hello");
  Value B = Value::ofString("hello");
  Value C = Value::ofString("world");
  EXPECT_TRUE(A.isString());
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(A.asString(), "hello");
  EXPECT_EQ(A.str(), "'hello'");
}

TEST(Value, TotalOrder) {
  // Integers sort before strings; strings sort by content.
  EXPECT_LT(Value::ofInt(5), Value::ofString("a"));
  EXPECT_LT(Value::ofString("a"), Value::ofString("b"));
  EXPECT_LT(Value::ofInt(-1), Value::ofInt(0));
  EXPECT_EQ(Value::ofInt(7).compare(Value::ofInt(7)), 0);
}

TEST(Value, HashStability) {
  // Hashes drive lock striping; equal values must hash equal, and the
  // hash must be deterministic across constructions.
  EXPECT_EQ(Value::ofInt(99).hash(), Value::ofInt(99).hash());
  EXPECT_EQ(Value::ofString("x").hash(), Value::ofString("x").hash());
  EXPECT_NE(Value::ofInt(1).hash(), Value::ofInt(2).hash());
}

// ---------------------------------------------------------------- Column

TEST(ColumnCatalog, AddAndLookup) {
  ColumnCatalog Cat;
  ColumnId A = Cat.add("alpha");
  ColumnId B = Cat.add("beta");
  EXPECT_EQ(Cat.id("alpha"), A);
  EXPECT_EQ(Cat.id("beta"), B);
  EXPECT_EQ(Cat.name(A), "alpha");
  EXPECT_TRUE(Cat.hasColumn("alpha"));
  EXPECT_FALSE(Cat.hasColumn("gamma"));
  EXPECT_EQ(Cat.size(), 2u);
}

TEST(ColumnSet, SetAlgebra) {
  ColumnSet A = ColumnSet::of(0) | ColumnSet::of(2);
  ColumnSet B = ColumnSet::of(2) | ColumnSet::of(3);
  EXPECT_TRUE(A.contains(0));
  EXPECT_FALSE(A.contains(1));
  EXPECT_EQ((A & B), ColumnSet::of(2));
  EXPECT_EQ((A | B).size(), 3u);
  EXPECT_EQ((A - B), ColumnSet::of(0));
  EXPECT_TRUE(A.intersects(B));
  EXPECT_TRUE((A | B).containsAll(A));
  EXPECT_FALSE(A.containsAll(B));
  EXPECT_EQ(ColumnSet::empty().size(), 0u);
}

TEST(ColumnSet, Members) {
  ColumnSet S = ColumnSet::of(5) | ColumnSet::of(1) | ColumnSet::of(9);
  std::vector<ColumnId> M = S.members();
  ASSERT_EQ(M.size(), 3u);
  EXPECT_EQ(M[0], 1u);
  EXPECT_EQ(M[1], 5u);
  EXPECT_EQ(M[2], 9u);
}

// ---------------------------------------------------------------- Tuple

TEST(Tuple, BuildProjectExtend) {
  Tuple T = Tuple::of({{2, Value::ofInt(30)},
                       {0, Value::ofInt(10)},
                       {1, Value::ofInt(20)}});
  EXPECT_EQ(T.size(), 3u);
  EXPECT_EQ(T.get(0).asInt(), 10);
  EXPECT_EQ(T.get(2).asInt(), 30);

  Tuple P = T.project(ColumnSet::of(0) | ColumnSet::of(2));
  EXPECT_EQ(P.size(), 2u);
  EXPECT_TRUE(T.extends(P));
  EXPECT_FALSE(P.extends(T));
  EXPECT_TRUE(T.extends(Tuple())); // every tuple extends the empty tuple
}

TEST(Tuple, MatchesAndJoin) {
  Tuple A = Tuple::of({{0, Value::ofInt(1)}, {1, Value::ofInt(2)}});
  Tuple B = Tuple::of({{1, Value::ofInt(2)}, {2, Value::ofInt(3)}});
  Tuple C = Tuple::of({{1, Value::ofInt(9)}});
  EXPECT_TRUE(A.matches(B));  // agree on common column 1
  EXPECT_FALSE(A.matches(C)); // disagree on column 1
  Tuple J;
  ASSERT_TRUE(A.tryJoin(B, J));
  EXPECT_EQ(J.size(), 3u);
  EXPECT_EQ(J.get(2).asInt(), 3);
  EXPECT_FALSE(A.tryJoin(C, J));
}

TEST(Tuple, AssignFormsReuseStorage) {
  // The in-place forms the executor's recycled state arena uses: same
  // results as unionWith/project, written into existing storage.
  Tuple A = Tuple::of({{0, Value::ofInt(1)}, {1, Value::ofInt(2)}});
  Tuple B = Tuple::of({{1, Value::ofInt(2)}, {2, Value::ofInt(3)}});
  Tuple Out = Tuple::of({{5, Value::ofInt(99)}}); // stale content
  Out.assignUnion(A, B);
  EXPECT_EQ(Out, A.unionWith(B));
  Out.assignProject(B, ColumnSet::of(2));
  EXPECT_EQ(Out, B.project(ColumnSet::of(2)));
  Out.assignUnion(A, Tuple());
  EXPECT_EQ(Out, A);
  Out.assignProject(A, ColumnSet::empty());
  EXPECT_TRUE(Out.empty());
}

TEST(Tuple, RebindInPlace) {
  // Prepared-operation slot binding: same layout rebinds values without
  // rebuilding the entry sequence; a different layout rebuilds it.
  const ColumnId Cols[] = {1, 3};
  const Value V1[] = {Value::ofInt(10), Value::ofInt(30)};
  const Value V2[] = {Value::ofInt(11), Value::ofInt(31)};
  Tuple T;
  T.rebind(Cols, V1, 2);
  EXPECT_EQ(T, Tuple::of({{1, Value::ofInt(10)}, {3, Value::ofInt(30)}}));
  T.rebind(Cols, V2, 2); // warm path: values only
  EXPECT_EQ(T, Tuple::of({{1, Value::ofInt(11)}, {3, Value::ofInt(31)}}));
  const ColumnId Wider[] = {0, 1, 3};
  const Value V3[] = {Value::ofInt(5), Value::ofInt(6), Value::ofInt(7)};
  T.rebind(Wider, V3, 3);
  EXPECT_EQ(T, Tuple::of({{0, Value::ofInt(5)},
                          {1, Value::ofInt(6)},
                          {3, Value::ofInt(7)}}));
  T.rebind(Cols, V1, 2);
  EXPECT_EQ(T.domain(), ColumnSet::of(1) | ColumnSet::of(3));
}

TEST(Tuple, LexicographicCompare) {
  Tuple A = Tuple::of({{0, Value::ofInt(1)}, {1, Value::ofInt(5)}});
  Tuple B = Tuple::of({{0, Value::ofInt(1)}, {1, Value::ofInt(6)}});
  Tuple C = Tuple::of({{0, Value::ofInt(1)}});
  EXPECT_LT(A.compare(B), 0);
  EXPECT_GT(B.compare(A), 0);
  EXPECT_EQ(A.compare(A), 0);
  // Prefix sorts first (the lock order needs totality, not semantics).
  EXPECT_LT(C.compare(A), 0);
}

TEST(Tuple, SetReplacesAndInserts) {
  Tuple T;
  T.set(3, Value::ofInt(1));
  T.set(1, Value::ofInt(2));
  T.set(3, Value::ofInt(9));
  EXPECT_EQ(T.size(), 2u);
  EXPECT_EQ(T.get(3).asInt(), 9);
  EXPECT_EQ(T.entries().front().first, 1u); // sorted by column id
}

TEST(Tuple, HashAgreesWithEquality) {
  Xoshiro256 Rng(5);
  for (int I = 0; I < 200; ++I) {
    Tuple A = Tuple::of({{0, Value::ofInt((int64_t)Rng.nextBounded(4))},
                         {1, Value::ofInt((int64_t)Rng.nextBounded(4))}});
    Tuple B = Tuple::of({{0, Value::ofInt((int64_t)Rng.nextBounded(4))},
                         {1, Value::ofInt((int64_t)Rng.nextBounded(4))}});
    if (A == B)
      EXPECT_EQ(A.hash(), B.hash());
  }
}

// --------------------------------------------------------- RelationSpec

TEST(RelationSpec, GraphSpecFdTheory) {
  RelationSpec Spec = makeGraphSpec();
  ColumnSet SrcDst = Spec.cols({"src", "dst"});
  ColumnSet Weight = Spec.cols({"weight"});
  EXPECT_TRUE(Spec.determines(SrcDst, Weight));
  EXPECT_FALSE(Spec.determines(Spec.cols({"src"}), Weight));
  EXPECT_TRUE(Spec.isKey(SrcDst));
  EXPECT_FALSE(Spec.isKey(Spec.cols({"src"})));
  EXPECT_TRUE(Spec.isKey(Spec.allColumns()));

  auto Keys = Spec.minimalKeys();
  ASSERT_EQ(Keys.size(), 1u);
  EXPECT_EQ(Keys[0], SrcDst);
}

TEST(RelationSpec, ClosureFixpoint) {
  // a -> b, b -> c: closure({a}) = {a,b,c}.
  RelationSpec Spec({"a", "b", "c"}, {{{"a"}, {"b"}}, {{"b"}, {"c"}}});
  EXPECT_EQ(Spec.closure(Spec.cols({"a"})), Spec.allColumns());
  EXPECT_EQ(Spec.closure(Spec.cols({"b"})), Spec.cols({"b", "c"}));
  EXPECT_EQ(Spec.closure(Spec.cols({"c"})), Spec.cols({"c"}));
}

TEST(RelationSpec, MultipleMinimalKeys) {
  // a -> b and b -> a: both {a,?} ... here {a,c} and {b,c} are keys.
  RelationSpec Spec({"a", "b", "c"}, {{{"a"}, {"b"}}, {{"b"}, {"a"}}});
  auto Keys = Spec.minimalKeys();
  EXPECT_EQ(Keys.size(), 2u);
}

// ----------------------------------------------------------- RefRelation

TEST(RefRelation, InsertSemantics) {
  RelationSpec Spec = makeGraphSpec();
  RefRelation R(Spec);
  Tuple Key = Tuple::of({{Spec.col("src"), Value::ofInt(1)},
                         {Spec.col("dst"), Value::ofInt(2)}});
  EXPECT_TRUE(R.insert(Key, Tuple::of({{Spec.col("weight"),
                                        Value::ofInt(42)}})));
  // §2: the second insert with the same key is a no-op even with a
  // different weight — this is how clients enforce the FD.
  EXPECT_FALSE(R.insert(Key, Tuple::of({{Spec.col("weight"),
                                         Value::ofInt(101)}})));
  EXPECT_EQ(R.size(), 1u);
  EXPECT_TRUE(R.satisfiesFds());
  auto Q = R.query(Key, Spec.cols({"weight"}));
  ASSERT_EQ(Q.size(), 1u);
  EXPECT_EQ(Q[0].get(Spec.col("weight")).asInt(), 42);
}

TEST(RefRelation, RemoveMatchesAllExtending) {
  RelationSpec Spec = makeGraphSpec();
  RefRelation R(Spec);
  auto Ins = [&](int64_t S, int64_t D, int64_t W) {
    R.insert(Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                        {Spec.col("dst"), Value::ofInt(D)}}),
             Tuple::of({{Spec.col("weight"), Value::ofInt(W)}}));
  };
  Ins(1, 2, 10);
  Ins(1, 3, 11);
  Ins(2, 3, 12);
  // remove r s with non-key s removes every matching tuple (the oracle
  // implements the general §2 semantics).
  EXPECT_EQ(R.remove(Tuple::of({{Spec.col("src"), Value::ofInt(1)}})), 2u);
  EXPECT_EQ(R.size(), 1u);
}

TEST(RefRelation, QueryProjectsAndDedups) {
  RelationSpec Spec = makeGraphSpec();
  RefRelation R(Spec);
  auto Ins = [&](int64_t S, int64_t D, int64_t W) {
    R.insert(Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                        {Spec.col("dst"), Value::ofInt(D)}}),
             Tuple::of({{Spec.col("weight"), Value::ofInt(W)}}));
  };
  Ins(1, 2, 7);
  Ins(1, 3, 7);
  // Projecting both tuples onto {weight} collapses to one row.
  auto Q = R.query(Tuple::of({{Spec.col("src"), Value::ofInt(1)}}),
                   Spec.cols({"weight"}));
  ASSERT_EQ(Q.size(), 1u);
  EXPECT_EQ(Q[0].get(Spec.col("weight")).asInt(), 7);
}

TEST(RefRelation, FdViolationDetection) {
  RelationSpec Spec = makeGraphSpec();
  RefRelation R(Spec);
  // Bypass the put-if-absent guard by inserting with full-key s; the
  // relation then holds two tuples sharing (src, dst) — an FD violation
  // the checker must flag.
  Tuple K1 = Tuple::of({{Spec.col("src"), Value::ofInt(1)},
                        {Spec.col("dst"), Value::ofInt(2)},
                        {Spec.col("weight"), Value::ofInt(10)}});
  Tuple K2 = Tuple::of({{Spec.col("src"), Value::ofInt(1)},
                        {Spec.col("dst"), Value::ofInt(2)},
                        {Spec.col("weight"), Value::ofInt(11)}});
  EXPECT_TRUE(R.insert(K1, Tuple()));
  EXPECT_TRUE(R.insert(K2, Tuple()));
  EXPECT_FALSE(R.satisfiesFds());
}

} // namespace
