//===- tests/autotune_test.cpp - Autotuner tests ------------------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "autotune/Autotuner.h"

#include <gtest/gtest.h>

#include <set>

using namespace crs;

namespace {

TEST(Enumerator, ProducesHundredsOfLegalVariants) {
  // §6.1/§6.2: the paper's autotuner generated 448 variants over the
  // same option menu; our legal-variant count lands in the same range.
  std::vector<GraphVariant> Variants = enumerateGraphVariants(1024);
  EXPECT_GT(Variants.size(), 150u);
  EXPECT_LT(Variants.size(), 800u);

  // All distinct, all legal.
  std::set<std::string> Names;
  for (const GraphVariant &V : Variants) {
    EXPECT_TRUE(Names.insert(V.str()).second) << "duplicate " << V.str();
    RepresentationConfig C = makeGraphRepresentation(V);
    ASSERT_TRUE(C.Placement) << V.str();
    EXPECT_TRUE(C.Decomp->validate().ok());
    EXPECT_TRUE(C.Placement->validate().ok());
    EXPECT_TRUE(C.Placement->validateContainerSafety().ok());
  }
}

TEST(Enumerator, FiltersIllegalCombinations) {
  // A non-concurrent container under a striped (concurrent) placement
  // must be filtered out.
  GraphVariant Bad{GraphShape::Split, PlacementSchemeKind::Striped, 1024,
                   ContainerKind::HashMap, ContainerKind::HashMap};
  EXPECT_FALSE(makeGraphRepresentation(Bad).Placement);

  // Speculation on a container without linearizable lookups: illegal.
  GraphVariant BadSpec{GraphShape::Split, PlacementSchemeKind::Speculative,
                       1024, ContainerKind::TreeMap, ContainerKind::HashMap};
  EXPECT_FALSE(makeGraphRepresentation(BadSpec).Placement);

  // The legal twin.
  GraphVariant Good{GraphShape::Split, PlacementSchemeKind::Striped, 1024,
                    ContainerKind::ConcurrentHashMap, ContainerKind::HashMap};
  EXPECT_TRUE(makeGraphRepresentation(Good).Placement);
}

TEST(Enumerator, VariantNamesAreDescriptive) {
  GraphVariant V{GraphShape::Diamond, PlacementSchemeKind::Striped, 1024,
                 ContainerKind::ConcurrentSkipListMap, ContainerKind::HashMap};
  std::string S = V.str();
  EXPECT_NE(S.find("diamond"), std::string::npos);
  EXPECT_NE(S.find("striped(1024)"), std::string::npos);
  EXPECT_NE(S.find("ConcurrentSkipListMap"), std::string::npos);
}

TEST(Figure5Menu, AllTwelveRepresentationsBuild) {
  auto Reps = figure5Representations();
  ASSERT_EQ(Reps.size(), 12u);
  std::set<std::string> Expected{"Stick 1",   "Stick 2",   "Stick 3",
                                 "Stick 4",   "Split 1",   "Split 2",
                                 "Split 3",   "Split 4",   "Split 5",
                                 "Diamond 0", "Diamond 1", "Diamond 2"};
  for (auto &[Name, Config] : Reps) {
    EXPECT_TRUE(Expected.count(Name)) << Name;
    ASSERT_TRUE(Config.Placement) << Name;
    EXPECT_TRUE(Config.Decomp->validate().ok()) << Name;
    EXPECT_TRUE(Config.Placement->validate().ok()) << Name;
    EXPECT_TRUE(Config.Placement->validateContainerSafety().ok()) << Name;
  }
}

TEST(Figure5Menu, Split2HasHybridLocking) {
  auto Reps = figure5Representations();
  const RepresentationConfig *Split2 = nullptr;
  for (auto &[Name, Config] : Reps)
    if (Name == "Split 2")
      Split2 = &Config;
  ASSERT_NE(Split2, nullptr);
  const LockPlacement &P = *Split2->Placement;
  // Left root edge striped by src (concurrent); right root edge pinned
  // to a constant stripe (serialized).
  EXPECT_TRUE(P.allowsConcurrentAccess(0));
  EXPECT_FALSE(P.allowsConcurrentAccess(1));
}

TEST(Autotune, RanksVariantsOnTrainingWorkload) {
  using CK = ContainerKind;
  using PS = PlacementSchemeKind;
  // A tiny menu with a predictable outcome is enough to exercise the
  // tuner loop: measurement, ranking, callback.
  std::vector<GraphVariant> Menu{
      {GraphShape::Stick, PS::Coarse, 1, CK::HashMap, CK::TreeMap},
      {GraphShape::Split, PS::Striped, 64, CK::ConcurrentHashMap,
       CK::TreeMap},
  };
  HarnessParams Params;
  Params.NumThreads = 2;
  Params.OpsPerThread = 1500;
  KeySpace Keys{64, 1024};
  int Callbacks = 0;
  auto Results = autotune(Menu, Fig5Workloads[1], Keys, Params,
                          [&](const TuneResult &) { ++Callbacks; });
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_EQ(Callbacks, 2);
  EXPECT_GE(Results[0].OpsPerSec, Results[1].OpsPerSec);
  // 35-35-20-10 punishes the stick's O(|E|) predecessor scans: the
  // split must win the ranking.
  EXPECT_EQ(Results[0].Variant.Shape, GraphShape::Split);
}

} // namespace
