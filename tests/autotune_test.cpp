//===- tests/autotune_test.cpp - Autotuner tests ------------------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "autotune/Autotuner.h"
#include "autotune/OnlineTuner.h"

#include <gtest/gtest.h>

#include <set>

using namespace crs;

namespace {

TEST(Enumerator, ProducesHundredsOfLegalVariants) {
  // §6.1/§6.2: the paper's autotuner generated 448 variants over the
  // same option menu; our legal-variant count lands in the same range.
  std::vector<GraphVariant> Variants = enumerateGraphVariants(1024);
  EXPECT_GT(Variants.size(), 150u);
  EXPECT_LT(Variants.size(), 800u);

  // All distinct, all legal.
  std::set<std::string> Names;
  for (const GraphVariant &V : Variants) {
    EXPECT_TRUE(Names.insert(V.str()).second) << "duplicate " << V.str();
    RepresentationConfig C = makeGraphRepresentation(V);
    ASSERT_TRUE(C.Placement) << V.str();
    EXPECT_TRUE(C.Decomp->validate().ok());
    EXPECT_TRUE(C.Placement->validate().ok());
    EXPECT_TRUE(C.Placement->validateContainerSafety().ok());
  }
}

TEST(Enumerator, FiltersIllegalCombinations) {
  // A non-concurrent container under a striped (concurrent) placement
  // must be filtered out.
  GraphVariant Bad{GraphShape::Split, PlacementSchemeKind::Striped, 1024,
                   ContainerKind::HashMap, ContainerKind::HashMap};
  EXPECT_FALSE(makeGraphRepresentation(Bad).Placement);

  // Speculation on a container without linearizable lookups: illegal.
  GraphVariant BadSpec{GraphShape::Split, PlacementSchemeKind::Speculative,
                       1024, ContainerKind::TreeMap, ContainerKind::HashMap};
  EXPECT_FALSE(makeGraphRepresentation(BadSpec).Placement);

  // The legal twin.
  GraphVariant Good{GraphShape::Split, PlacementSchemeKind::Striped, 1024,
                    ContainerKind::ConcurrentHashMap, ContainerKind::HashMap};
  EXPECT_TRUE(makeGraphRepresentation(Good).Placement);
}

TEST(Enumerator, VariantNamesAreDescriptive) {
  GraphVariant V{GraphShape::Diamond, PlacementSchemeKind::Striped, 1024,
                 ContainerKind::ConcurrentSkipListMap, ContainerKind::HashMap};
  std::string S = V.str();
  EXPECT_NE(S.find("diamond"), std::string::npos);
  EXPECT_NE(S.find("striped(1024)"), std::string::npos);
  EXPECT_NE(S.find("ConcurrentSkipListMap"), std::string::npos);
}

TEST(Figure5Menu, AllTwelveRepresentationsBuild) {
  auto Reps = figure5Representations();
  ASSERT_EQ(Reps.size(), 12u);
  std::set<std::string> Expected{"Stick 1",   "Stick 2",   "Stick 3",
                                 "Stick 4",   "Split 1",   "Split 2",
                                 "Split 3",   "Split 4",   "Split 5",
                                 "Diamond 0", "Diamond 1", "Diamond 2"};
  for (auto &[Name, Config] : Reps) {
    EXPECT_TRUE(Expected.count(Name)) << Name;
    ASSERT_TRUE(Config.Placement) << Name;
    EXPECT_TRUE(Config.Decomp->validate().ok()) << Name;
    EXPECT_TRUE(Config.Placement->validate().ok()) << Name;
    EXPECT_TRUE(Config.Placement->validateContainerSafety().ok()) << Name;
  }
}

TEST(Figure5Menu, Split2HasHybridLocking) {
  auto Reps = figure5Representations();
  const RepresentationConfig *Split2 = nullptr;
  for (auto &[Name, Config] : Reps)
    if (Name == "Split 2")
      Split2 = &Config;
  ASSERT_NE(Split2, nullptr);
  const LockPlacement &P = *Split2->Placement;
  // Left root edge striped by src (concurrent); right root edge pinned
  // to a constant stripe (serialized).
  EXPECT_TRUE(P.allowsConcurrentAccess(0));
  EXPECT_FALSE(P.allowsConcurrentAccess(1));
}

TEST(Autotune, RanksVariantsOnTrainingWorkload) {
  using CK = ContainerKind;
  using PS = PlacementSchemeKind;
  // A tiny menu with a predictable outcome is enough to exercise the
  // tuner loop: measurement, ranking, callback.
  std::vector<GraphVariant> Menu{
      {GraphShape::Stick, PS::Coarse, 1, CK::HashMap, CK::TreeMap},
      {GraphShape::Split, PS::Striped, 64, CK::ConcurrentHashMap,
       CK::TreeMap},
  };
  HarnessParams Params;
  Params.NumThreads = 2;
  Params.OpsPerThread = 1500;
  KeySpace Keys{64, 1024};
  int Callbacks = 0;
  auto Results = autotune(Menu, Fig5Workloads[1], Keys, Params,
                          [&](const TuneResult &) { ++Callbacks; });
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_EQ(Callbacks, 2);
  EXPECT_GE(Results[0].OpsPerSec, Results[1].OpsPerSec);
  // 35-35-20-10 punishes the stick's O(|E|) predecessor scans: the
  // split must win the ranking.
  EXPECT_EQ(Results[0].Variant.Shape, GraphShape::Split);
}

//===----------------------------------------------------------------------===//
// OnlineTuner (autotune/OnlineTuner.h)
//===----------------------------------------------------------------------===//

/// The signature set of the graph benchmark: successor query, insert,
/// remove.
std::vector<PlanCache::Signature> graphSignatures(const RelationSpec &Spec) {
  ColumnSet Src = Spec.cols({"src"});
  ColumnSet Key = Spec.cols({"src", "dst"});
  ColumnSet Out = Spec.cols({"dst", "weight"});
  return {{PlanOp::Query, Src.bits(), Out.bits()},
          {PlanOp::Insert, Key.bits(), 0},
          {PlanOp::Remove, Key.bits(), 0}};
}

TEST(OnlineTuner, ScoringReproducesTheContentionCrossover) {
  // The §6.2 story the static cost model cannot tell alone: with one
  // uncontended thread the coarse placement's cheap plans win; under
  // contended multi-threaded load the striped placement's parallelism
  // supply pays for itself.
  RepresentationConfig Coarse = makeGraphRepresentation(
      {GraphShape::Stick, PlacementSchemeKind::Coarse, 1,
       ContainerKind::HashMap, ContainerKind::HashMap});
  RepresentationConfig Striped = makeGraphRepresentation(
      {GraphShape::Stick, PlacementSchemeKind::Striped, 1024,
       ContainerKind::ConcurrentHashMap, ContainerKind::HashMap});
  ASSERT_TRUE(Coarse.Placement && Striped.Placement);
  auto Sigs = graphSignatures(*Coarse.Spec);
  OperationCounts Mix{70, 20, 10};
  CostParams Measured;

  // Uncontended: parallelism demand is 1 for both; the coarse plans
  // are no worse.
  double CoarseIdle = OnlineTuner::scoreRepresentation(
      Coarse, Sigs, Mix, Measured, /*ContentionRatio=*/0.0, /*Threads=*/4);
  double StripedIdle = OnlineTuner::scoreRepresentation(
      Striped, Sigs, Mix, Measured, 0.0, 4);
  EXPECT_LE(CoarseIdle, StripedIdle);

  // Half the acquisitions contended on 4 threads: the striped root's
  // supply divides its cost; the coarse root stays serialized.
  double CoarseHot = OnlineTuner::scoreRepresentation(
      Coarse, Sigs, Mix, Measured, /*ContentionRatio=*/0.5, /*Threads=*/4);
  double StripedHot = OnlineTuner::scoreRepresentation(
      Striped, Sigs, Mix, Measured, 0.5, 4);
  EXPECT_LT(StripedHot, CoarseHot);
  EXPECT_EQ(CoarseHot, CoarseIdle); // supply 1: contention cannot help
}

TEST(OnlineTuner, TickHoldsWithoutAPredictedWin) {
  RepresentationConfig Config = makeGraphRepresentation(
      {GraphShape::Stick, PlacementSchemeKind::Coarse, 1,
       ContainerKind::HashMap, ContainerKind::TreeMap});
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);

  OnlineTunerConfig Cfg;
  // Same structure and containers, striped: without measured
  // contention there is no predicted win to clear the hysteresis.
  Cfg.Candidates = {{GraphShape::Stick, PlacementSchemeKind::Striped, 1024,
                     ContainerKind::ConcurrentHashMap,
                     ContainerKind::TreeMap}};
  Cfg.Threads = 4;
  Cfg.ConfirmTicks = 1;
  OnlineTuner Tuner(R, Cfg);

  // Nothing compiled yet: nothing to score.
  EXPECT_FALSE(Tuner.tick().Scored);

  for (int64_t I = 0; I < 40; ++I)
    R.insert(Tuple::of({{Spec.col("src"), Value::ofInt(I % 5)},
                        {Spec.col("dst"), Value::ofInt(I)}}),
             Tuple::of({{Spec.col("weight"), Value::ofInt(I)}}));
  R.query(Tuple::of({{Spec.col("src"), Value::ofInt(1)}}),
          Spec.cols({"dst", "weight"}));

  TuneTick T = Tuner.tick();
  EXPECT_TRUE(T.Scored);
  EXPECT_GT(T.CurrentCost, 0.0);
  EXPECT_FALSE(T.Migrated);
  EXPECT_EQ(T.Confirmations, 0u);
  EXPECT_EQ(R.config().Name, Config.Name);
}

TEST(OnlineTuner, TickMigratesOnceConfirmed) {
  RepresentationConfig Config = makeGraphRepresentation(
      {GraphShape::Stick, PlacementSchemeKind::Coarse, 1,
       ContainerKind::HashMap, ContainerKind::TreeMap});
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);
  for (int64_t I = 0; I < 60; ++I)
    R.insert(Tuple::of({{Spec.col("src"), Value::ofInt(I % 6)},
                        {Spec.col("dst"), Value::ofInt(I)}}),
             Tuple::of({{Spec.col("weight"), Value::ofInt(I * 2)}}));
  R.query(Tuple::of({{Spec.col("src"), Value::ofInt(2)}}),
          Spec.cols({"dst", "weight"}));
  std::vector<Tuple> Before = R.scanAll();

  GraphVariant Target{GraphShape::Split, PlacementSchemeKind::Striped, 64,
                      ContainerKind::ConcurrentHashMap,
                      ContainerKind::TreeMap};
  OnlineTunerConfig Cfg;
  Cfg.Candidates = {Target};
  Cfg.Threads = 4;
  // A permissive policy (any candidate counts as a win) exercises the
  // confirmation streak and the migration trigger deterministically.
  Cfg.HysteresisRatio = 0.0;
  Cfg.ConfirmTicks = 2;
  OnlineTuner Tuner(R, Cfg);

  TuneTick T1 = Tuner.tick();
  EXPECT_TRUE(T1.Scored);
  EXPECT_EQ(T1.Confirmations, 1u);
  EXPECT_FALSE(T1.Migrated);
  TuneTick T2 = Tuner.tick();
  EXPECT_EQ(T2.Confirmations, 2u);
  ASSERT_TRUE(T2.Migrated) << T2.Migration.Error;
  EXPECT_EQ(T2.BestName, makeGraphRepresentation(Target).Name);
  EXPECT_EQ(R.config().Name, T2.BestName);
  EXPECT_EQ(R.scanAll(), Before);
  EXPECT_TRUE(R.verifyConsistency().ok());
}

} // namespace
