//===- tests/containers_test.cpp - Container substrate tests ------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Unit and stress tests for the Figure 1 container taxonomy: functional
/// correctness of each from-scratch container (against std::map as the
/// model), structural invariants (AVL balance), taxonomy traits, and
/// concurrent stress for the concurrency-safe containers (linearizable
/// lookup/write, weakly-consistent or snapshot scans).
///
//===----------------------------------------------------------------------===//

#include "containers/ConcurrentHashMap.h"
#include "containers/ConcurrentSkipListMap.h"
#include "containers/ContainerTraits.h"
#include "containers/CowArrayMap.h"
#include "containers/HashMap.h"
#include "containers/SingletonCell.h"
#include "containers/TreeMap.h"
#include "runtime/AnyContainer.h"
#include "runtime/NodeInstance.h"
#include "support/Hashing.h"
#include "support/Rng.h"
#include "sync/Epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

using namespace crs;

namespace {

struct IntHash {
  uint64_t operator()(int64_t V) const {
    return mix64(static_cast<uint64_t>(V));
  }
};
struct IntLess {
  bool operator()(int64_t A, int64_t B) const { return A < B; }
};

// ------------------------------------------------- generic model check

/// Randomized differential test of any map-like container against
/// std::map.
template <typename Map> void runModelCheck(Map &M, uint64_t Seed,
                                           int Steps, int64_t KeyRange) {
  std::map<int64_t, int64_t> Model;
  Xoshiro256 Rng(Seed);
  for (int I = 0; I < Steps; ++I) {
    int64_t K = static_cast<int64_t>(Rng.nextBounded(KeyRange));
    int64_t V = static_cast<int64_t>(Rng.nextBounded(1000));
    switch (Rng.nextBounded(4)) {
    case 0: {
      bool A = M.insertOrAssign(K, V);
      bool B = Model.insert_or_assign(K, V).second;
      ASSERT_EQ(A, B) << "insert at step " << I;
      break;
    }
    case 1: {
      bool A = M.erase(K);
      bool B = Model.erase(K) > 0;
      ASSERT_EQ(A, B) << "erase at step " << I;
      break;
    }
    case 2: {
      int64_t Out = -1;
      bool A = M.lookup(K, Out);
      auto It = Model.find(K);
      ASSERT_EQ(A, It != Model.end()) << "lookup at step " << I;
      if (A)
        ASSERT_EQ(Out, It->second);
      break;
    }
    default: {
      std::map<int64_t, int64_t> Seen;
      M.scan([&](const int64_t &Key, const int64_t &Val) {
        Seen.emplace(Key, Val);
        return true;
      });
      ASSERT_EQ(Seen, Model) << "scan at step " << I;
      break;
    }
    }
    ASSERT_EQ(M.size(), Model.size());
  }
}

TEST(HashMapModel, RandomOps) {
  HashMap<int64_t, int64_t, IntHash> M;
  runModelCheck(M, 11, 4000, 64);
}

TEST(HashMapModel, GrowsThroughResize) {
  HashMap<int64_t, int64_t, IntHash> M(2);
  for (int64_t I = 0; I < 1000; ++I)
    ASSERT_TRUE(M.insertOrAssign(I, I * 2));
  EXPECT_EQ(M.size(), 1000u);
  for (int64_t I = 0; I < 1000; ++I) {
    int64_t V = -1;
    ASSERT_TRUE(M.lookup(I, V));
    ASSERT_EQ(V, I * 2);
  }
}

TEST(TreeMapModel, RandomOps) {
  TreeMap<int64_t, int64_t, IntLess> M;
  runModelCheck(M, 12, 4000, 64);
  EXPECT_TRUE(M.checkInvariants());
}

TEST(TreeMapModel, SortedScanAndBalance) {
  TreeMap<int64_t, int64_t, IntLess> M;
  Xoshiro256 Rng(13);
  for (int I = 0; I < 2000; ++I)
    M.insertOrAssign(static_cast<int64_t>(Rng.nextBounded(100000)), I);
  EXPECT_TRUE(M.checkInvariants());
  int64_t Prev = -1;
  M.scan([&](const int64_t &K, const int64_t &) {
    EXPECT_LT(Prev, K);
    Prev = K;
    return true;
  });
  // Deletions keep the AVL balanced.
  for (int64_t K = 0; K < 100000; K += 3)
    M.erase(K);
  EXPECT_TRUE(M.checkInvariants());
}

TEST(TreeMapModel, ScanEarlyStop) {
  TreeMap<int64_t, int64_t, IntLess> M;
  for (int64_t I = 0; I < 100; ++I)
    M.insertOrAssign(I, I);
  int Count = 0;
  M.scan([&](const int64_t &, const int64_t &) { return ++Count < 10; });
  EXPECT_EQ(Count, 10);
}

TEST(ConcurrentHashMapModel, RandomOps) {
  ConcurrentHashMap<int64_t, int64_t, IntHash> M(16);
  runModelCheck(M, 14, 4000, 64);
}

TEST(ConcurrentHashMapModel, InsertIfAbsent) {
  ConcurrentHashMap<int64_t, int64_t, IntHash> M;
  EXPECT_TRUE(M.insertIfAbsent(1, 10));
  EXPECT_FALSE(M.insertIfAbsent(1, 20));
  int64_t V = -1;
  ASSERT_TRUE(M.lookup(1, V));
  EXPECT_EQ(V, 10);
}

TEST(ConcurrentSkipListModel, RandomOps) {
  ConcurrentSkipListMap<int64_t, int64_t, IntLess> M;
  runModelCheck(M, 15, 4000, 64);
}

TEST(ConcurrentSkipListModel, SortedScan) {
  ConcurrentSkipListMap<int64_t, int64_t, IntLess> M;
  Xoshiro256 Rng(16);
  for (int I = 0; I < 1000; ++I)
    M.insertOrAssign(static_cast<int64_t>(Rng.nextBounded(10000)), I);
  int64_t Prev = -1;
  size_t Seen = 0;
  M.scan([&](const int64_t &K, const int64_t &) {
    EXPECT_LT(Prev, K);
    Prev = K;
    ++Seen;
    return true;
  });
  EXPECT_EQ(Seen, M.size());
}

TEST(CowArrayMapModel, RandomOps) {
  CowArrayMap<int64_t, int64_t, IntLess> M;
  runModelCheck(M, 17, 2000, 32);
}

TEST(SingletonCellModel, HoldsOneEntry) {
  SingletonCell<int64_t, int64_t> C;
  EXPECT_TRUE(C.empty());
  EXPECT_TRUE(C.insertOrAssign(7, 70));
  EXPECT_FALSE(C.insertOrAssign(7, 71)); // replace, not insert
  int64_t V = -1;
  ASSERT_TRUE(C.lookup(7, V));
  EXPECT_EQ(V, 71);
  EXPECT_FALSE(C.lookup(8, V));
  EXPECT_EQ(C.size(), 1u);
  EXPECT_TRUE(C.erase(7));
  EXPECT_FALSE(C.erase(7));
  EXPECT_TRUE(C.empty());
}

// ----------------------------------------------------------- taxonomy

TEST(Taxonomy, Figure1Rows) {
  // The library's Figure 1: non-concurrent rows.
  for (ContainerKind K : {ContainerKind::HashMap, ContainerKind::TreeMap}) {
    ContainerTraits T = containerTraits(K);
    EXPECT_EQ(T.LookupLookup, PairSafety::Linearizable);
    EXPECT_EQ(T.LookupWrite, PairSafety::Unsafe);
    EXPECT_EQ(T.WriteWrite, PairSafety::Unsafe);
    EXPECT_FALSE(T.concurrencySafe());
  }
  // Concurrent rows: L/W and W/W linearizable, S/W weak.
  for (ContainerKind K : {ContainerKind::ConcurrentHashMap,
                          ContainerKind::ConcurrentSkipListMap}) {
    ContainerTraits T = containerTraits(K);
    EXPECT_TRUE(T.concurrencySafe());
    EXPECT_TRUE(T.linearizableLookup());
    EXPECT_EQ(T.ScanWrite, PairSafety::Weak);
  }
  // CopyOnWrite: snapshot iteration is fully linearizable.
  ContainerTraits Cow = containerTraits(ContainerKind::CowArrayMap);
  EXPECT_EQ(Cow.ScanWrite, PairSafety::Linearizable);
  EXPECT_TRUE(Cow.concurrencySafe());
  // SingletonCell: atomic entry pointer, so reads are linearizable even
  // against a concurrent write; racing writers merely lose updates
  // (weak), which the plans' exclusive locks prevent. Concurrency-safe
  // is what lets the dotted FD edges join the wait-free read path.
  ContainerTraits Cell = containerTraits(ContainerKind::SingletonCell);
  EXPECT_TRUE(Cell.concurrencySafe());
  EXPECT_TRUE(Cell.linearizableLookup());
  EXPECT_EQ(Cell.ScanWrite, PairSafety::Linearizable);
  EXPECT_EQ(Cell.WriteWrite, PairSafety::Weak);
  // Sorted-scan flags drive the planner's sort-elision analysis.
  EXPECT_FALSE(containerTraits(ContainerKind::HashMap).SortedScan);
  EXPECT_TRUE(containerTraits(ContainerKind::TreeMap).SortedScan);
  EXPECT_TRUE(
      containerTraits(ContainerKind::ConcurrentSkipListMap).SortedScan);
}

TEST(Taxonomy, Names) {
  EXPECT_STREQ(containerKindName(ContainerKind::ConcurrentHashMap),
               "ConcurrentHashMap");
  EXPECT_STREQ(pairSafetyName(PairSafety::Unsafe), "no");
  EXPECT_STREQ(pairSafetyName(PairSafety::Weak), "weak");
  EXPECT_STREQ(pairSafetyName(PairSafety::Linearizable), "yes");
}

// ------------------------------------------------------ concurrent use

/// Concurrent writers on disjoint key ranges plus readers; afterwards
/// the container must hold exactly the surviving keys.
template <typename Map> void runConcurrentStress(Map &M) {
  constexpr int NumWriters = 4;
  constexpr int64_t PerWriter = 400;
  std::vector<std::thread> Threads;
  for (int W = 0; W < NumWriters; ++W) {
    Threads.emplace_back([&M, W] {
      int64_t Base = W * PerWriter;
      for (int64_t I = 0; I < PerWriter; ++I)
        M.insertOrAssign(Base + I, W);
      for (int64_t I = 0; I < PerWriter; I += 2)
        M.erase(Base + I);
    });
  }
  // Concurrent readers: scans and lookups must be safe (weakly
  // consistent results are acceptable; crashes and torn reads are not).
  std::atomic<bool> Stop{false};
  std::thread Reader([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      size_t Seen = 0;
      M.scan([&](const int64_t &, const int64_t &) {
        ++Seen;
        return true;
      });
      int64_t Out;
      M.lookup(3, Out);
    }
  });
  for (auto &T : Threads)
    T.join();
  Stop.store(true, std::memory_order_release);
  Reader.join();

  size_t Expected = NumWriters * (PerWriter / 2);
  EXPECT_EQ(M.size(), Expected);
  for (int W = 0; W < NumWriters; ++W)
    for (int64_t I = 0; I < PerWriter; ++I) {
      int64_t Out = -1;
      bool Present = M.lookup(W * PerWriter + I, Out);
      ASSERT_EQ(Present, I % 2 == 1);
      if (Present)
        ASSERT_EQ(Out, W);
    }
}

TEST(ConcurrentHashMapStress, WritersAndReaders) {
  ConcurrentHashMap<int64_t, int64_t, IntHash> M;
  runConcurrentStress(M);
}

TEST(ConcurrentSkipListStress, WritersAndReaders) {
  ConcurrentSkipListMap<int64_t, int64_t, IntLess> M;
  runConcurrentStress(M);
}

TEST(CowArrayMapStress, WritersAndReaders) {
  CowArrayMap<int64_t, int64_t, IntLess> M;
  runConcurrentStress(M);
}

TEST(SingletonCellStress, OneWriterManyGuardedReaders) {
  // The cell's contract: one externally serialized writer, any number
  // of readers running inside epoch guards (in the runtime both the
  // locked and wait-free paths hold one). Readers must only ever see
  // the FD key with a value some write actually published — never a
  // torn entry, never freed memory.
  SingletonCell<int64_t, int64_t> C;
  constexpr int64_t FDKey = 7;
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Readers;
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire)) {
        EpochDomain::Guard G;
        int64_t Out = -1;
        if (C.lookup(FDKey, Out))
          EXPECT_GE(Out, 0);
        C.scan([&](const int64_t &K, const int64_t &V) {
          EXPECT_EQ(K, FDKey);
          EXPECT_GE(V, 0);
        });
        EXPECT_LE(C.size(), 1u);
      }
    });
  for (int64_t I = 0; I < 20000; ++I) {
    if (I % 3 == 2)
      C.erase(FDKey);
    else
      C.insertOrAssign(FDKey, I);
  }
  Stop.store(true, std::memory_order_release);
  for (auto &T : Readers)
    T.join();
  EpochDomain::global().synchronize();
}

TEST(ConcurrentHashMapStress, PutIfAbsentUniqueWinner) {
  // The §2 insert is a generalized put-if-absent: under contention
  // exactly one thread must win each key.
  ConcurrentHashMap<int64_t, int64_t, IntHash> M;
  constexpr int NumThreads = 8;
  std::atomic<int> Wins{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&M, &Wins, T] {
      for (int64_t K = 0; K < 200; ++K)
        if (M.insertIfAbsent(K, T))
          Wins.fetch_add(1, std::memory_order_relaxed);
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Wins.load(), 200);
  EXPECT_EQ(M.size(), 200u);
}

TEST(CowArrayMapStress, SnapshotScansAreAtomic) {
  // A writer alternates between two configurations that each hold an
  // invariant (both keys present with equal values); snapshot scans must
  // never observe a mixed state.
  CowArrayMap<int64_t, int64_t, IntLess> M;
  M.insertOrAssign(1, 0);
  M.insertOrAssign(2, 0);
  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    for (int64_t I = 1; I < 3000; ++I) {
      // Build the next snapshot in two writes; readers may see the
      // intermediate value for key 1 only in a *fresh* snapshot — but a
      // single scan must agree with itself (it reads one snapshot).
      M.insertOrAssign(1, I);
      M.insertOrAssign(2, I);
    }
    Stop.store(true, std::memory_order_release);
  });
  while (!Stop.load(std::memory_order_acquire)) {
    std::vector<std::pair<int64_t, int64_t>> Seen;
    M.scan([&](const int64_t &K, const int64_t &V) {
      Seen.push_back({K, V});
      return true;
    });
    ASSERT_EQ(Seen.size(), 2u);
    // Within one snapshot, key2's value never exceeds key1's.
    ASSERT_LE(Seen[1].second, Seen[0].second + 1);
  }
  Writer.join();
}

// ------------------------------------------------------- AnyContainer

TEST(AnyContainer, AllKindsBehaveAsMaps) {
  for (ContainerKind Kind : AllContainerKinds) {
    std::unique_ptr<AnyContainer> C = AnyContainer::create(Kind);
    ASSERT_EQ(C->kind(), Kind);
    Tuple K1 = Tuple::of({{0, Value::ofInt(1)}});
    Tuple K2 = Tuple::of({{0, Value::ofInt(2)}});
    NodeInstPtr V1 = std::make_shared<NodeInstance>();
    NodeInstPtr V2 = std::make_shared<NodeInstance>();

    EXPECT_TRUE(C->insertOrAssign(K1, V1)) << containerKindName(Kind);
    // SingletonCell cannot hold a second distinct key; every other kind
    // can.
    if (Kind != ContainerKind::SingletonCell) {
      EXPECT_TRUE(C->insertOrAssign(K2, V2));
      EXPECT_EQ(C->size(), 2u);
    }
    NodeInstPtr Out;
    ASSERT_TRUE(C->lookup(K1, Out));
    EXPECT_EQ(Out.get(), V1.get());
    EXPECT_TRUE(C->erase(K1));
    EXPECT_FALSE(C->erase(K1));
    EXPECT_FALSE(C->lookup(K1, Out));
  }
}

TEST(AnyContainer, ScanVisitsEverything) {
  for (ContainerKind Kind : AllContainerKinds) {
    if (Kind == ContainerKind::SingletonCell)
      continue;
    std::unique_ptr<AnyContainer> C = AnyContainer::create(Kind);
    for (int64_t I = 0; I < 50; ++I)
      C->insertOrAssign(Tuple::of({{0, Value::ofInt(I)}}),
                        std::make_shared<NodeInstance>());
    size_t Seen = 0;
    C->scan([&](const Tuple &, const NodeInstPtr &) {
      ++Seen;
      return true;
    });
    EXPECT_EQ(Seen, 50u) << containerKindName(Kind);
  }
}

} // namespace
