//===- tests/statistics_test.cpp - Statistics & adaptive replanning -----------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "autotune/Autotuner.h"
#include "lockplace/PlacementSchemes.h"
#include "rel/RefRelation.h"
#include "runtime/ConcurrentRelation.h"

#include <gtest/gtest.h>

using namespace crs;

namespace {

Tuple gKey(const RelationSpec &Spec, int64_t S, int64_t D) {
  return Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                    {Spec.col("dst"), Value::ofInt(D)}});
}

Tuple gWeight(const RelationSpec &Spec, int64_t W) {
  return Tuple::of({{Spec.col("weight"), Value::ofInt(W)}});
}

TEST(Statistics, CountsContainersAndEntries) {
  RepresentationConfig Config = makeGraphRepresentation(
      {GraphShape::Stick, PlacementSchemeKind::Fine, 1,
       ContainerKind::HashMap, ContainerKind::TreeMap});
  ASSERT_TRUE(Config.Placement);
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);

  // 3 sources with 1, 2, and 4 successors.
  int64_t Src = 0;
  for (int Fan : {1, 2, 4}) {
    for (int64_t D = 0; D < Fan; ++D)
      R.insert(gKey(Spec, Src, D), gWeight(Spec, Src * 10 + D));
    ++Src;
  }
  RelationStatistics Stats = R.collectStatistics();
  ASSERT_EQ(Stats.Edges.size(), 3u);
  // Edge 0 (rho->u): one container (the root's) holding 3 sources.
  EXPECT_EQ(Stats.Edges[0].Containers, 1u);
  EXPECT_EQ(Stats.Edges[0].Entries, 3u);
  EXPECT_DOUBLE_EQ(Stats.Edges[0].averageFanout(), 3.0);
  // Edge 1 (u->v): 3 adjacency containers holding 7 edges total.
  EXPECT_EQ(Stats.Edges[1].Containers, 3u);
  EXPECT_EQ(Stats.Edges[1].Entries, 7u);
  EXPECT_NEAR(Stats.Edges[1].averageFanout(), 7.0 / 3.0, 1e-9);
  // Edge 2 (v->w singleton): 7 cells, 7 entries.
  EXPECT_EQ(Stats.Edges[2].Containers, 7u);
  EXPECT_EQ(Stats.Edges[2].Entries, 7u);
  // Instances: root + 3 u + 7 v + 7 w.
  EXPECT_EQ(Stats.NodeInstances, 1u + 3u + 7u + 7u);
}

TEST(Statistics, SharedNodesCountedOnce) {
  RepresentationConfig Config = makeGraphRepresentation(
      {GraphShape::Diamond, PlacementSchemeKind::Fine, 1,
       ContainerKind::HashMap, ContainerKind::HashMap});
  ASSERT_TRUE(Config.Placement);
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);
  for (int64_t I = 0; I < 5; ++I)
    R.insert(gKey(Spec, I, I + 1), gWeight(Spec, I));
  RelationStatistics Stats = R.collectStatistics();
  // Diamond: root + 5 x + 5 y + 5 shared z + 5 w = 21, not 26.
  EXPECT_EQ(Stats.NodeInstances, 21u);
}

TEST(Statistics, LockTrafficIsRecorded) {
  RepresentationConfig Config = makeGraphRepresentation(
      {GraphShape::Split, PlacementSchemeKind::Coarse, 1,
       ContainerKind::HashMap, ContainerKind::TreeMap});
  ASSERT_TRUE(Config.Placement);
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);
  // Force the locked read path: this test measures lock traffic, which
  // the wait-free fast path deliberately produces none of.
  R.setFastReads(false);
  for (int64_t I = 0; I < 20; ++I)
    R.insert(gKey(Spec, I % 4, I), gWeight(Spec, I));
  // Enough queries to clear the shared-side sampling period several
  // times over (shared acquisitions are sampled, not exact — see
  // sync/PhysicalLock.h).
  constexpr int64_t Queries = 4 * PhysicalLock::SharedSamplePeriod;
  for (int64_t I = 0; I < Queries; ++I)
    R.query(Tuple::of({{Spec.col("src"), Value::ofInt(I % 4)}}),
            Spec.cols({"dst", "weight"}));
  RelationStatistics Stats = R.collectStatistics();
  // Coarse placement: all traffic lands on the root's single lock —
  // 20 exact exclusive acquisitions plus the sampled shared estimate.
  EXPECT_GT(Stats.Nodes[0].Acquisitions,
            20u + 2 * PhysicalLock::SharedSamplePeriod);
  EXPECT_EQ(Stats.Nodes[0].Instances, 1u);
}

TEST(Statistics, AdaptPlansUsesMeasuredFanoutsAndStaysCorrect) {
  RepresentationConfig Config = makeGraphRepresentation(
      {GraphShape::Split, PlacementSchemeKind::Fine, 1,
       ContainerKind::HashMap, ContainerKind::TreeMap});
  ASSERT_TRUE(Config.Placement);
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);
  RefRelation Ref(Spec);

  // A skewed graph: few sources, many destinations per source.
  for (int64_t S = 0; S < 2; ++S)
    for (int64_t D = 0; D < 40; ++D) {
      R.insert(gKey(Spec, S, D), gWeight(Spec, S + D));
      Ref.insert(gKey(Spec, S, D), gWeight(Spec, S + D));
    }

  RelationStatistics Stats = R.collectStatistics();
  CostParams Adapted = Stats.toCostParams(CostParams{});
  ASSERT_EQ(Adapted.EdgeFanout.size(), 6u);
  EXPECT_DOUBLE_EQ(Adapted.EdgeFanout[0], 2.0);  // rho->u: 2 sources
  EXPECT_DOUBLE_EQ(Adapted.EdgeFanout[1], 40.0); // rho->v: 40 dsts
  EXPECT_DOUBLE_EQ(Adapted.EdgeFanout[2], 40.0); // u->w: 40 per source

  R.adaptPlans();
  // Replanned operations still agree with the reference semantics.
  for (int64_t S = 0; S < 2; ++S)
    EXPECT_EQ(R.query(Tuple::of({{Spec.col("src"), Value::ofInt(S)}}),
                      Spec.cols({"dst", "weight"})),
              Ref.query(Tuple::of({{Spec.col("src"), Value::ofInt(S)}}),
                        Spec.cols({"dst", "weight"})));
  for (int64_t D = 0; D < 40; D += 7)
    EXPECT_EQ(R.query(Tuple::of({{Spec.col("dst"), Value::ofInt(D)}}),
                      Spec.cols({"src", "weight"})),
              Ref.query(Tuple::of({{Spec.col("dst"), Value::ofInt(D)}}),
                        Spec.cols({"src", "weight"})));
  EXPECT_EQ(R.remove(gKey(Spec, 0, 0)), Ref.remove(gKey(Spec, 0, 0)));
  EXPECT_EQ(R.scanAll(), Ref.allTuples());
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST(Statistics, MeasuredFanoutChangesPlanChoice) {
  // A relation where the static defaults and the measured shape
  // disagree: query by a column whose index side is huge. With measured
  // stats the planner should route through the small side.
  RelationSpec SpecV({"a", "b", "c"}, {{{"a", "b"}, {"c"}}});
  auto Spec = std::make_shared<RelationSpec>(SpecV);
  // Split-like: rho -{a}-> u -{b}-> w -{c}-> x ; rho -{b}-> v -{a}-> y -{c}-> z
  auto D = std::make_shared<Decomposition>(*Spec);
  ColumnSet A = Spec->cols({"a"}), B = Spec->cols({"b"}), C = Spec->cols({"c"});
  NodeId Rho = D->addNode("rho", ColumnSet::empty(), Spec->allColumns());
  NodeId U = D->addNode("u", A, B | C);
  NodeId W = D->addNode("w", A | B, C);
  NodeId X = D->addNode("x", Spec->allColumns(), ColumnSet::empty());
  NodeId V = D->addNode("v", B, A | C);
  NodeId Y = D->addNode("y", A | B, C);
  NodeId Z = D->addNode("z", Spec->allColumns(), ColumnSet::empty());
  D->addEdge(Rho, U, A, ContainerKind::HashMap);
  D->addEdge(U, W, B, ContainerKind::HashMap);
  D->addEdge(W, X, C, ContainerKind::SingletonCell);
  D->addEdge(Rho, V, B, ContainerKind::HashMap);
  D->addEdge(V, Y, A, ContainerKind::HashMap);
  D->addEdge(Y, Z, C, ContainerKind::SingletonCell);
  ASSERT_TRUE(D->validate().ok()) << D->validate().str();
  auto PC = std::make_shared<LockPlacement>(makeCoarsePlacement(*D));

  // Fanout pattern: many distinct a (fanout rho->u large), few b.
  ConcurrentRelation R({Spec, D, PC, "skew"});
  for (int64_t I = 0; I < 60; ++I)
    R.insert(Tuple::of({{Spec->col("a"), Value::ofInt(I)},
                        {Spec->col("b"), Value::ofInt(I % 2)}}),
             Tuple::of({{Spec->col("c"), Value::ofInt(I)}}));

  // Query: dom(s)={c} forces scans; want {a,b}. Static model ties the
  // two sides (same shape); measured stats make the b-side (2 entries
  // at the root) strictly cheaper than the a-side (60 entries).
  RelationStatistics Stats = R.collectStatistics();
  QueryPlanner StaticPlanner(*D, *PC);
  QueryPlanner MeasuredPlanner(*D, *PC, Stats.toCostParams(CostParams{}));
  Plan Static = StaticPlanner.planQuery(C, A | B);
  Plan Measured = MeasuredPlanner.planQuery(C, A | B);
  // The measured plan must start its traversal on the rho->v side.
  const PlanStmt *FirstRead = nullptr;
  for (const auto &St : Measured.Stmts)
    if (St.K == PlanStmt::Kind::Scan || St.K == PlanStmt::Kind::Lookup) {
      FirstRead = &St;
      break;
    }
  ASSERT_NE(FirstRead, nullptr);
  EXPECT_EQ(FirstRead->Edge, 3u) << Measured.str(); // rho->v
  // And its estimated cost under measured stats beats the static pick's.
  EXPECT_LE(MeasuredPlanner.cost(Measured), MeasuredPlanner.cost(Static));
}

} // namespace
