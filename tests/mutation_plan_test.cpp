//===- tests/mutation_plan_test.cpp - Insert/remove plans as IR --------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Mutations as first-class plan IR (§5.2): the planner emits full
/// insert/remove plans — topological lock schedules, put-if-absent
/// guard, write statements — that pass the validity checker on every
/// shape and placement, cover every edge, and render through explain.
///
//===----------------------------------------------------------------------===//

#include "autotune/Autotuner.h"
#include "decomp/Shapes.h"
#include "lockplace/PlacementSchemes.h"
#include "plan/PlanValidity.h"
#include "plan/Planner.h"
#include "runtime/ConcurrentRelation.h"

#include <gtest/gtest.h>

using namespace crs;

namespace {

unsigned countKind(const Plan &P, PlanStmt::Kind K) {
  unsigned N = 0;
  for (const auto &St : P.Stmts)
    if (St.K == K)
      ++N;
  return N;
}

std::vector<std::pair<Decomposition, LockPlacement>> allCases() {
  static RelationSpec GraphSpec = makeGraphSpec();
  static RelationSpec DSpec = makeDCacheSpec();
  std::vector<std::pair<Decomposition, LockPlacement>> Cases;
  for (GraphShape S :
       {GraphShape::Stick, GraphShape::Split, GraphShape::Diamond}) {
    Decomposition D = makeGraphDecomposition(
        GraphSpec, S,
        {ContainerKind::ConcurrentHashMap, ContainerKind::ConcurrentHashMap});
    Cases.push_back({D, makeCoarsePlacement(D)});
    Cases.push_back({D, makeFinePlacement(D)});
    Cases.push_back({D, makeStripedPlacement(D, 16)});
    Cases.push_back({D, makeSpeculativePlacement(D, 16)});
  }
  {
    Decomposition D = makeDCacheDecomposition(DSpec);
    Cases.push_back({D, makeCoarsePlacement(D)});
    Cases.push_back({D, makeFinePlacement(D)});
  }
  return Cases;
}

TEST(MutationPlans, InsertPlansValidAndCompleteEverywhere) {
  for (const auto &[D, P] : allCases()) {
    QueryPlanner Planner(D, P);
    for (ColumnSet DomKey : D.spec().minimalKeys()) {
      Plan In = Planner.planInsert(DomKey);
      ValidationResult R = checkPlanValidity(In);
      EXPECT_TRUE(R.ok()) << D.str() << "\n" << P.str() << "\n"
                          << In.str() << R.str();
      EXPECT_EQ(In.Op, PlanOp::Insert);
      EXPECT_TRUE(In.ForMutation);
      // Exactly one guard, one count bump, every edge written, every
      // non-root node creatable, every in-edge resolvable.
      EXPECT_EQ(countKind(In, PlanStmt::Kind::GuardAbsent), 1u);
      EXPECT_EQ(countKind(In, PlanStmt::Kind::UpdateCount), 1u);
      EXPECT_EQ(countKind(In, PlanStmt::Kind::InsertEdge), D.numEdges());
      EXPECT_EQ(countKind(In, PlanStmt::Kind::CreateNode), D.numNodes() - 1);
      EXPECT_EQ(countKind(In, PlanStmt::Kind::Probe), D.numEdges());
      // The write phase sits strictly after the guard.
      bool Guarded = false;
      for (const auto &St : In.Stmts) {
        if (St.K == PlanStmt::Kind::GuardAbsent)
          Guarded = true;
        if (St.K == PlanStmt::Kind::CreateNode ||
            St.K == PlanStmt::Kind::InsertEdge)
          EXPECT_TRUE(Guarded);
      }
    }
  }
}

TEST(MutationPlans, RemovePlansEraseEveryEdgeEverywhere) {
  for (const auto &[D, P] : allCases()) {
    QueryPlanner Planner(D, P);
    for (ColumnSet DomKey : D.spec().minimalKeys()) {
      Plan Rm = Planner.planRemove(DomKey);
      ValidationResult R = checkPlanValidity(Rm);
      EXPECT_TRUE(R.ok()) << D.str() << "\n" << P.str() << "\n"
                          << Rm.str() << R.str();
      EXPECT_EQ(Rm.Op, PlanOp::Remove);
      EXPECT_EQ(countKind(Rm, PlanStmt::Kind::EraseEdge), D.numEdges());
      EXPECT_EQ(countKind(Rm, PlanStmt::Kind::UpdateCount), 1u);
      // The locate prefix is exactly the standalone locate plan.
      Plan Locate = Planner.planRemoveLocate(DomKey);
      EXPECT_EQ(countKind(Rm, PlanStmt::Kind::Lookup),
                countKind(Locate, PlanStmt::Kind::Lookup));
      EXPECT_EQ(countKind(Rm, PlanStmt::Kind::Scan),
                countKind(Locate, PlanStmt::Kind::Scan));
    }
  }
}

TEST(MutationPlans, SharedNodesAreHuskGated) {
  // In the dcache decomposition some nodes are keyed by non-key column
  // sets (e.g. {parent} alone): their instances are shared across
  // tuples, so their erase statements must be husk-gated, while nodes
  // keyed by a relation key are owned and erased unconditionally.
  RelationSpec Spec = makeDCacheSpec();
  Decomposition D = makeDCacheDecomposition(Spec);
  LockPlacement P = makeFinePlacement(D);
  QueryPlanner Planner(D, P);
  Plan Rm = Planner.planRemove(*Spec.minimalKeys().begin());
  bool SawGated = false, SawUngated = false;
  for (const auto &St : Rm.Stmts)
    if (St.K == PlanStmt::Kind::EraseEdge)
      (St.OnlyIfHusk ? SawGated : SawUngated) = true;
  EXPECT_TRUE(SawGated) << Rm.str();
  EXPECT_TRUE(SawUngated) << Rm.str();
}

TEST(MutationPlans, ExplainInsertRendersWriteStatements) {
  RepresentationConfig Config;
  for (auto &[N, C] : figure5Representations())
    if (N == "Split 4")
      Config = C;
  ASSERT_TRUE(Config.Placement);
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);
  std::string S = R.explainInsert(Spec.cols({"src", "dst"}));
  EXPECT_NE(S.find("probe("), std::string::npos) << S;
  EXPECT_NE(S.find("lock!("), std::string::npos) << S;
  EXPECT_NE(S.find("restrict("), std::string::npos) << S;
  EXPECT_NE(S.find("guard-absent("), std::string::npos) << S;
  EXPECT_NE(S.find("create("), std::string::npos) << S;
  EXPECT_NE(S.find("insert-entry("), std::string::npos) << S;
  EXPECT_NE(S.find("adjust-count("), std::string::npos) << S;
  std::string Rm = R.explainRemove(Spec.cols({"src", "dst"}));
  EXPECT_NE(Rm.find("erase-entry("), std::string::npos) << Rm;
  EXPECT_NE(Rm.find("adjust-count("), std::string::npos) << Rm;
}

TEST(MutationPlans, ValidityRejectsIncompleteWrites) {
  // Dropping one InsertEdge from a valid insert plan must fail the
  // every-edge coverage check.
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Split);
  LockPlacement P = makeFinePlacement(D);
  QueryPlanner Planner(D, P);
  Plan In = Planner.planInsert(Spec.cols({"src", "dst"}));
  Plan Bad = In;
  for (auto It = Bad.Stmts.begin(); It != Bad.Stmts.end(); ++It)
    if (It->K == PlanStmt::Kind::InsertEdge) {
      Bad.Stmts.erase(It);
      break;
    }
  ValidationResult R = checkPlanValidity(Bad);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("never writes"), std::string::npos) << R.str();

  // A write smuggled before the guard must be rejected too.
  Plan Early = In;
  for (size_t I = 0; I < Early.Stmts.size(); ++I)
    if (Early.Stmts[I].K == PlanStmt::Kind::GuardAbsent) {
      std::swap(Early.Stmts[I], Early.Stmts[I + 1]);
      break;
    }
  EXPECT_FALSE(checkPlanValidity(Early).ok());
}

} // namespace
