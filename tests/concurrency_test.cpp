//===- tests/concurrency_test.cpp - Serializability & deadlock freedom --------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// The paper's correctness-by-construction claims under real
/// concurrency: serializable relational operations (§4.2) and deadlock
/// freedom (§5.1) across coarse, fine, striped, and speculative
/// placements on all three decomposition structures. Strategies:
///
///  * quiescent-state validation: after a concurrent stress run, every
///    root-to-leaf path represents the same relation and the functional
///    dependency holds — a serializability witness for the final state;
///  * put-if-absent races: conflicting inserts of one key have exactly
///    one winner, and the surviving weight is the winner's (§2's
///    compare-and-set contract);
///  * atomicity of reads: a tuple is never observed half-written;
///  * deadlock freedom: high-contention mixed workloads run to
///    completion (a deadlock would hang the test).
///
//===----------------------------------------------------------------------===//

#include "autotune/Autotuner.h"
#include "runtime/ConcurrentRelation.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace crs;

namespace {

struct ConfigCase {
  const char *Name;
  GraphVariant Variant;
};

std::vector<ConfigCase> stressConfigs() {
  using CK = ContainerKind;
  using PS = PlacementSchemeKind;
  return {
      {"stick_coarse", {GraphShape::Stick, PS::Coarse, 1, CK::HashMap,
                        CK::TreeMap}},
      {"stick_striped", {GraphShape::Stick, PS::Striped, 64,
                         CK::ConcurrentHashMap, CK::TreeMap}},
      {"split_fine", {GraphShape::Split, PS::Fine, 1, CK::HashMap,
                      CK::HashMap}},
      {"split_striped", {GraphShape::Split, PS::Striped, 64,
                         CK::ConcurrentHashMap, CK::TreeMap}},
      {"split_skiplist", {GraphShape::Split, PS::Striped, 64,
                          CK::ConcurrentSkipListMap, CK::HashMap}},
      {"split_speculative", {GraphShape::Split, PS::Speculative, 64,
                             CK::ConcurrentHashMap, CK::HashMap}},
      {"diamond_striped", {GraphShape::Diamond, PS::Striped, 64,
                           CK::ConcurrentHashMap, CK::HashMap}},
      {"diamond_speculative", {GraphShape::Diamond, PS::Speculative, 64,
                               CK::ConcurrentHashMap, CK::HashMap}},
  };
}

class ConcurrencyTest : public ::testing::TestWithParam<ConfigCase> {};

Tuple key(const RelationSpec &Spec, int64_t S, int64_t D) {
  return Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                    {Spec.col("dst"), Value::ofInt(D)}});
}

Tuple weight(const RelationSpec &Spec, int64_t W) {
  return Tuple::of({{Spec.col("weight"), Value::ofInt(W)}});
}

TEST_P(ConcurrencyTest, MixedStressLeavesConsistentState) {
  RepresentationConfig Config = makeGraphRepresentation(GetParam().Variant);
  ASSERT_TRUE(Config.Placement) << GetParam().Variant.str();
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);

  constexpr unsigned NumThreads = 4;
  constexpr int OpsPerThread = 2500;
  constexpr int64_t KeyRange = 12; // small: force contention

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(1000 + T);
      for (int I = 0; I < OpsPerThread; ++I) {
        int64_t S = static_cast<int64_t>(Rng.nextBounded(KeyRange));
        int64_t D = static_cast<int64_t>(Rng.nextBounded(KeyRange));
        switch (Rng.nextBounded(4)) {
        case 0:
          R.insert(key(Spec, S, D),
                   weight(Spec, static_cast<int64_t>(Rng.nextBounded(100))));
          break;
        case 1:
          R.remove(key(Spec, S, D));
          break;
        case 2:
          R.query(Tuple::of({{Spec.col("src"), Value::ofInt(S)}}),
                  Spec.cols({"dst", "weight"}));
          break;
        default:
          R.query(Tuple::of({{Spec.col("dst"), Value::ofInt(D)}}),
                  Spec.cols({"src", "weight"}));
          break;
        }
      }
    });
  }
  for (auto &T : Threads)
    T.join();

  // Quiescent validation: all paths agree, FDs hold, size is right.
  ValidationResult V = R.verifyConsistency();
  EXPECT_TRUE(V.ok()) << GetParam().Name << ":\n" << V.str();
}

TEST_P(ConcurrencyTest, PutIfAbsentHasExactlyOneWinner) {
  RepresentationConfig Config = makeGraphRepresentation(GetParam().Variant);
  ASSERT_TRUE(Config.Placement);
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);

  constexpr unsigned NumThreads = 6;
  constexpr int64_t NumKeys = 40;
  std::atomic<int> Wins[NumKeys] = {};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (int64_t K = 0; K < NumKeys; ++K)
        // Every thread offers its own id as the weight.
        if (R.insert(key(Spec, K, K + 1), weight(Spec, T)))
          Wins[K].fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto &T : Threads)
    T.join();

  for (int64_t K = 0; K < NumKeys; ++K)
    EXPECT_EQ(Wins[K].load(), 1) << "key " << K;
  EXPECT_EQ(R.size(), static_cast<size_t>(NumKeys));
  // FD intact: each key has exactly one weight, 0 <= w < NumThreads.
  for (int64_t K = 0; K < NumKeys; ++K) {
    auto Q = R.query(key(Spec, K, K + 1), Spec.cols({"weight"}));
    ASSERT_EQ(Q.size(), 1u);
    int64_t W = Q[0].get(Spec.col("weight")).asInt();
    EXPECT_GE(W, 0);
    EXPECT_LT(W, static_cast<int64_t>(NumThreads));
  }
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST_P(ConcurrencyTest, ReadsAreNeverTorn) {
  // Writers cycle one key between present (with a thread-specific
  // weight) and absent; readers must always see either a complete tuple
  // with a legal weight or nothing.
  RepresentationConfig Config = makeGraphRepresentation(GetParam().Variant);
  ASSERT_TRUE(Config.Placement);
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Violations{0};
  std::vector<std::thread> Writers;
  for (int T = 0; T < 2; ++T)
    Writers.emplace_back([&, T] {
      for (int I = 0; I < 1500; ++I) {
        R.insert(key(Spec, 5, 6), weight(Spec, 100 + T));
        R.remove(key(Spec, 5, 6));
      }
    });
  std::thread Reader([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      auto Q = R.query(Tuple::of({{Spec.col("src"), Value::ofInt(5)}}),
                       Spec.cols({"dst", "weight"}));
      for (const Tuple &T : Q) {
        if (!T.hasColumn(Spec.col("dst")) ||
            !T.hasColumn(Spec.col("weight"))) {
          Violations.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        int64_t W = T.get(Spec.col("weight")).asInt();
        if (T.get(Spec.col("dst")).asInt() != 6 || (W != 100 && W != 101))
          Violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (auto &W : Writers)
    W.join();
  Stop.store(true, std::memory_order_release);
  Reader.join();
  EXPECT_EQ(Violations.load(), 0u);
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST_P(ConcurrencyTest, DisjointPartitionsAllSurvive) {
  // Each thread owns a src partition; after the run every inserted edge
  // must be present — lost updates would betray a serializability hole.
  RepresentationConfig Config = makeGraphRepresentation(GetParam().Variant);
  ASSERT_TRUE(Config.Placement);
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);

  constexpr unsigned NumThreads = 4;
  constexpr int64_t PerThread = 150;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int64_t I = 0; I < PerThread; ++I)
        ASSERT_TRUE(R.insert(key(Spec, T, I), weight(Spec, I * 3)));
    });
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(R.size(), NumThreads * PerThread);
  for (unsigned T = 0; T < NumThreads; ++T) {
    auto Q = R.query(Tuple::of({{Spec.col("src"), Value::ofInt(T)}}),
                     Spec.cols({"dst", "weight"}));
    EXPECT_EQ(Q.size(), static_cast<size_t>(PerThread));
  }
  EXPECT_TRUE(R.verifyConsistency().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Placements, ConcurrencyTest, ::testing::ValuesIn(stressConfigs()),
    [](const ::testing::TestParamInfo<ConfigCase> &Info) {
      return Info.param.Name;
    });

TEST(SpeculativeRestarts, CounterAdvancesUnderContention) {
  // Speculation must stay correct when guesses go stale; the restart
  // counter is the observable sign the protocol exercised that path.
  RepresentationConfig Config = makeGraphRepresentation(
      {GraphShape::Split, PlacementSchemeKind::Speculative, 8,
       ContainerKind::ConcurrentHashMap, ContainerKind::HashMap});
  ASSERT_TRUE(Config.Placement);
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);

  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    Xoshiro256 Rng(3);
    for (int I = 0; I < 4000; ++I) {
      int64_t S = static_cast<int64_t>(Rng.nextBounded(4));
      int64_t D = static_cast<int64_t>(Rng.nextBounded(4));
      if (Rng.nextBounded(2))
        R.insert(key(Spec, S, D), weight(Spec, I));
      else
        R.remove(key(Spec, S, D));
    }
    Stop.store(true, std::memory_order_release);
  });
  std::thread ReaderThread([&] {
    Xoshiro256 Rng(4);
    while (!Stop.load(std::memory_order_acquire))
      R.query(Tuple::of({{Spec.col("src"),
                          Value::ofInt((int64_t)Rng.nextBounded(4))}}),
              Spec.cols({"dst", "weight"}));
  });
  Writer.join();
  ReaderThread.join();
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
  // Restarts are workload-dependent; we only require the run finished
  // and stayed consistent. Report for the curious:
  SUCCEED() << "restarts: " << R.restarts();
}

} // namespace
