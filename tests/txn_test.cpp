//===- tests/txn_test.cpp - Serializable multi-operation transactions --------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// src/txn: strict-2PL transaction scopes. Covers commit and abort
/// exactness (undo via inverse plans, across shapes and placements),
/// scope retention (a reader blocks on uncommitted state and never sees
/// it), bounded wait-die fairness under deliberate cross-order
/// contention, the epoch abort-and-retry contract around adaptPlans,
/// transactions racing a live migration through both flips (buffered
/// mirror flush on commit, discard on abort), the cross-shard commit
/// against the committed-txn-log oracle, the inverse-plan IR (validity,
/// explainTxn rendering, cache signatures), and the debug
/// LockOrderValidator's cross-set rule.
///
//===----------------------------------------------------------------------===//

#include "StressHarness.h"
#include "autotune/Autotuner.h"
#include "plan/PlanValidity.h"
#include "sync/LockOrderValidator.h"
#include "txn/Transaction.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace crs;

namespace {

Tuple key(const RelationSpec &Spec, int64_t S, int64_t D) {
  return Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                    {Spec.col("dst"), Value::ofInt(D)}});
}

Tuple weight(const RelationSpec &Spec, int64_t W) {
  return Tuple::of({{Spec.col("weight"), Value::ofInt(W)}});
}

RepresentationConfig stickCoarse() {
  return makeGraphRepresentation({GraphShape::Stick,
                                  PlacementSchemeKind::Coarse, 1,
                                  ContainerKind::HashMap,
                                  ContainerKind::TreeMap});
}

RepresentationConfig splitStriped(uint32_t Stripes = 64) {
  return makeGraphRepresentation({GraphShape::Split,
                                  PlacementSchemeKind::Striped, Stripes,
                                  ContainerKind::ConcurrentHashMap,
                                  ContainerKind::TreeMap});
}

/// Every representation the suite sweeps for undo exactness: the three
/// Fig. 3 shapes under coarse, striped, and (where available)
/// speculative placements.
std::vector<RepresentationConfig> sweepConfigs() {
  std::vector<RepresentationConfig> Out;
  for (GraphShape Shape :
       {GraphShape::Stick, GraphShape::Split, GraphShape::Diamond})
    for (PlacementSchemeKind PK :
         {PlacementSchemeKind::Coarse, PlacementSchemeKind::Striped,
          PlacementSchemeKind::Speculative}) {
      // Speculative placements need concurrency-safe containers on the
      // guessed edges; makeGraphRepresentation rejects illegal combos
      // (empty config), which the filter below drops.
      ContainerKind L2 = PK == PlacementSchemeKind::Speculative
                             ? ContainerKind::ConcurrentSkipListMap
                             : ContainerKind::TreeMap;
      RepresentationConfig C = makeGraphRepresentation(
          {Shape, PK, PK == PlacementSchemeKind::Striped ? 64u : 8u,
           ContainerKind::ConcurrentHashMap, L2});
      if (C.Placement && C.Placement->validate().ok() &&
          C.Placement->validateContainerSafety().ok())
        Out.push_back(std::move(C));
    }
  return Out;
}

struct Handles {
  PreparedQuery Succ;
  PreparedInsert Ins;
  PreparedRemove Rem;
  explicit Handles(ConcurrentRelation &R) {
    const RelationSpec &Spec = R.spec();
    Succ = R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
    Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
    Rem = R.prepareRemove(Spec.cols({"src", "dst"}));
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Inverse-plan IR
//===----------------------------------------------------------------------===//

TEST(TxnPlans, InversePlansValidPricedAndRendered) {
  for (const RepresentationConfig &C : sweepConfigs()) {
    QueryPlanner P(*C.Decomp, *C.Placement);
    Plan UndoIns = P.planUndoInsert();
    Plan UndoRem = P.planUndoRemove();
    EXPECT_EQ(UndoIns.Op, PlanOp::UndoInsert);
    EXPECT_EQ(UndoRem.Op, PlanOp::UndoRemove);
    ValidationResult V1 = checkPlanValidity(UndoIns);
    EXPECT_TRUE(V1.ok()) << C.Name << ": " << V1.str();
    ValidationResult V2 = checkPlanValidity(UndoRem);
    EXPECT_TRUE(V2.ok()) << C.Name << ": " << V2.str();
    // Priced like any plan (the cost model walks statements).
    EXPECT_GT(P.cost(UndoIns), 0.0);
    EXPECT_GT(P.cost(UndoRem), 0.0);
    // The exclusive-mode read plan is valid for every signature shape.
    ColumnSet Src = C.Spec->cols({"src"});
    Plan Q = P.planQueryForUpdate(Src, C.Spec->cols({"dst", "weight"}));
    EXPECT_EQ(Q.Op, PlanOp::QueryForUpdate);
    ValidationResult V3 = checkPlanValidity(Q);
    EXPECT_TRUE(V3.ok()) << C.Name << ": " << V3.str();
    // A for-update plan locks exclusively and never speculates.
    for (const PlanStmt &St : Q.Stmts) {
      if (St.K == PlanStmt::Kind::Lock)
        EXPECT_EQ(St.Mode, LockMode::Exclusive) << C.Name;
      EXPECT_NE(St.K, PlanStmt::Kind::SpecLookup) << C.Name;
      EXPECT_NE(St.K, PlanStmt::Kind::SpecScan) << C.Name;
    }
  }
}

TEST(TxnPlans, UndoPlansNeverMirrorEvenDuringDualWrite) {
  RepresentationConfig C = stickCoarse();
  QueryPlanner P(*C.Decomp, *C.Placement);
  P.setEmitMirrorWrites(true);
  // Forward mutation plans mirror; their inverses must not (the scope
  // buffers mirrors and flushes at commit — aborts discard).
  auto HasMirror = [](const Plan &Pl) {
    for (const PlanStmt &St : Pl.Stmts)
      if (St.K == PlanStmt::Kind::MirrorWrite)
        return true;
    return false;
  };
  EXPECT_TRUE(HasMirror(P.planInsert(C.Spec->cols({"src", "dst"}))));
  EXPECT_FALSE(HasMirror(P.planUndoInsert()));
  EXPECT_FALSE(HasMirror(P.planUndoRemove()));
}

TEST(TxnPlans, ExplainTxnRendersForwardAndInverse) {
  RepresentationConfig C = splitStriped();
  ConcurrentRelation R(C);
  std::string S = R.explainTxn(PlanOp::Insert, C.Spec->cols({"src", "dst"}));
  EXPECT_NE(S.find("== forward: insert"), std::string::npos) << S;
  EXPECT_NE(S.find("undo-insert"), std::string::npos) << S;
  EXPECT_NE(S.find("erase-entry"), std::string::npos) << S;
  std::string S2 = R.explainTxn(PlanOp::Remove, C.Spec->cols({"src", "dst"}));
  EXPECT_NE(S2.find("== forward: remove"), std::string::npos) << S2;
  EXPECT_NE(S2.find("undo-remove"), std::string::npos) << S2;
  EXPECT_NE(S2.find("guard-absent"), std::string::npos) << S2;
}

//===----------------------------------------------------------------------===//
// Commit / abort exactness
//===----------------------------------------------------------------------===//

TEST(Txn, CommitMakesAllOpsVisibleAtomically) {
  for (const RepresentationConfig &C : sweepConfigs()) {
    ConcurrentRelation R(C);
    const RelationSpec &Spec = R.spec();
    Handles H(R);
    for (int64_t I = 0; I < 16; ++I)
      ASSERT_TRUE(R.insert(key(Spec, I, I), weight(Spec, I)));

    Transaction T(R);
    bool Won = false;
    unsigned Removed = 0;
    uint32_t Matches = 0;
    // Read, move a tuple, insert a fresh one — one atomic scope.
    EXPECT_TRUE(T.query(H.Succ, {Value::ofInt(3)}, nullptr, &Matches));
    EXPECT_EQ(Matches, 1u);
    EXPECT_TRUE(T.remove(H.Rem, {Value::ofInt(3), Value::ofInt(3)},
                         &Removed));
    EXPECT_EQ(Removed, 1u);
    EXPECT_TRUE(T.insert(H.Ins,
                         {Value::ofInt(3), Value::ofInt(99),
                          Value::ofInt(333)},
                         &Won));
    EXPECT_TRUE(Won);
    EXPECT_TRUE(T.insert(H.Ins,
                         {Value::ofInt(77), Value::ofInt(7),
                          Value::ofInt(777)},
                         &Won));
    EXPECT_TRUE(Won);
    EXPECT_EQ(T.undoDepth(), 3u);
    EXPECT_TRUE(T.commit());
    EXPECT_EQ(T.state(), TxnState::Committed);
    EXPECT_GT(T.commitSeq(), 0u);

    EXPECT_EQ(R.size(), 17u) << C.Name;
    EXPECT_TRUE(R.query(key(Spec, 3, 3), Spec.allColumns()).empty());
    EXPECT_EQ(R.query(key(Spec, 3, 99), Spec.allColumns()).size(), 1u);
    ValidationResult V = R.verifyConsistency();
    EXPECT_TRUE(V.ok()) << C.Name << ": " << V.str();
  }
}

TEST(Txn, AbortRollsBackExactlyAcrossShapesAndPlacements) {
  for (const RepresentationConfig &C : sweepConfigs()) {
    ConcurrentRelation R(C);
    const RelationSpec &Spec = R.spec();
    Handles H(R);
    for (int64_t I = 0; I < 24; ++I)
      ASSERT_TRUE(R.insert(key(Spec, I % 6, I), weight(Spec, I * 10)));
    std::vector<Tuple> Before = R.scanAll();
    size_t Size0 = R.size();

    Transaction T(R);
    bool Won = false;
    unsigned Removed = 0;
    // A mixed scope touching shared structure: removes that husk inner
    // nodes, inserts that create fresh subtrees, a losing insert.
    EXPECT_TRUE(T.remove(H.Rem, {Value::ofInt(0), Value::ofInt(0)},
                         &Removed));
    EXPECT_EQ(Removed, 1u);
    EXPECT_TRUE(T.remove(H.Rem, {Value::ofInt(0), Value::ofInt(6)},
                         &Removed));
    EXPECT_EQ(Removed, 1u);
    EXPECT_TRUE(T.insert(H.Ins,
                         {Value::ofInt(100), Value::ofInt(1),
                          Value::ofInt(1)},
                         &Won));
    EXPECT_TRUE(Won);
    EXPECT_TRUE(T.insert(H.Ins,
                         {Value::ofInt(1), Value::ofInt(7),
                          Value::ofInt(2)},
                         &Won));
    EXPECT_FALSE(Won); // (1, 7) exists: no effect, no undo record
    EXPECT_TRUE(T.insert(H.Ins,
                         {Value::ofInt(0), Value::ofInt(0),
                          Value::ofInt(55)},
                         &Won));
    EXPECT_TRUE(Won); // re-keys the first removed tuple with new weight
    EXPECT_EQ(T.undoDepth(), 4u);
    T.abort();
    EXPECT_EQ(T.state(), TxnState::Aborted);
    EXPECT_EQ(T.abortCause(), TxnAbortCause::User);

    // Bit-exact rollback: the same tuples, the same count, FDs intact.
    EXPECT_EQ(R.size(), Size0) << C.Name;
    EXPECT_EQ(R.scanAll(), Before) << C.Name;
    ValidationResult V = R.verifyConsistency();
    EXPECT_TRUE(V.ok()) << C.Name << ": " << V.str();
  }
}

TEST(Txn, DestructionOfOpenScopeAborts) {
  RepresentationConfig C = splitStriped();
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  ASSERT_TRUE(R.insert(key(Spec, 1, 1), weight(Spec, 10)));
  {
    Transaction T(R);
    unsigned Removed = 0;
    EXPECT_TRUE(T.remove(H.Rem, {Value::ofInt(1), Value::ofInt(1)},
                         &Removed));
    EXPECT_EQ(Removed, 1u);
    EXPECT_EQ(R.size(), 0u); // applied inside the scope
  } // dropped without commit: rolls back
  EXPECT_EQ(R.size(), 1u);
  EXPECT_EQ(R.query(key(Spec, 1, 1), Spec.allColumns()).size(), 1u);
}

TEST(Txn, CtxPoolRecyclesAcrossThreadGenerations) {
  // The per-thread transaction context pool donates its contexts to a
  // process-global recycle list at thread exit, and later threads adopt
  // them before constructing cold ones. Several generations of
  // single-transaction workers must stay exact through the hand-off —
  // including the frame purge that keeps one thread's prepared-op
  // bindings from leaking into the next thread's scope.
  ConcurrentRelation R(stickCoarse());
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  for (int64_t Gen = 0; Gen < 6; ++Gen) {
    std::thread W([&R, &H, Gen] {
      Transaction T(R);
      bool Won = false;
      EXPECT_TRUE(T.insert(H.Ins,
                           {Value::ofInt(Gen), Value::ofInt(Gen),
                            Value::ofInt(Gen * 10)},
                           &Won));
      EXPECT_TRUE(Won);
      if (Gen % 2 == 0)
        EXPECT_TRUE(T.commit());
      // Odd generations drop the open scope: destructor aborts and the
      // adopted context is released (and later donated) mid-rollback
      // state-free.
    });
    W.join();
  }
  EXPECT_EQ(R.size(), 3u);
  for (int64_t Gen = 0; Gen < 6; ++Gen)
    EXPECT_EQ(R.query(key(Spec, Gen, Gen), Spec.allColumns()).size(),
              Gen % 2 == 0 ? 1u : 0u);
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST(Txn, ScopeRetainsLocksUntilCommit) {
  // A rival reader of a key the scope wrote must block until commit —
  // never observing the intermediate state. The rival runs a bare
  // prepared query from another thread; the scope holds the written
  // key's exclusive locks across a deliberate delay.
  RepresentationConfig C = stickCoarse(); // one lock: guaranteed overlap
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  ASSERT_TRUE(R.insert(key(Spec, 5, 5), weight(Spec, 50)));

  std::atomic<bool> ScopeOpen{false}, RivalDone{false};
  std::atomic<int64_t> RivalSaw{-1};
  Transaction T(R);
  unsigned Removed = 0;
  ASSERT_TRUE(T.remove(H.Rem, {Value::ofInt(5), Value::ofInt(5)}, &Removed));
  ASSERT_EQ(Removed, 1u);
  bool Won = false;
  ASSERT_TRUE(T.insert(H.Ins,
                       {Value::ofInt(5), Value::ofInt(5), Value::ofInt(51)},
                       &Won));
  ASSERT_TRUE(Won);
  ScopeOpen.store(true, std::memory_order_release);

  std::thread Rival([&] {
    while (!ScopeOpen.load(std::memory_order_acquire))
      std::this_thread::yield();
    // Blocks on the scope's exclusive lock until commit.
    int64_t W = -1;
    H.Succ.bind(0, Value::ofInt(5));
    H.Succ.forEach(
        [&](const Tuple &Tp) { W = Tp.get(Spec.col("weight")).asInt(); });
    RivalSaw.store(W, std::memory_order_release);
    RivalDone.store(true, std::memory_order_release);
  });

  // Give the rival ample opportunity to observe 51-in-progress if the
  // scope leaked; it must still be parked on the lock.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(RivalDone.load(std::memory_order_acquire));
  ASSERT_TRUE(T.commit());
  Rival.join();
  EXPECT_EQ(RivalSaw.load(std::memory_order_acquire), 51);
}

//===----------------------------------------------------------------------===//
// Wait-die and fairness
//===----------------------------------------------------------------------===//

TEST(Txn, WaitDieFairnessUnderCrossOrderContention) {
  // Workers transact across a tiny keyspace in *opposite* key orders on
  // a coarse placement — the classic deadlock shape. Bounded wait-die
  // must keep every thread completing scopes (no deadlock, no
  // starvation), with runTransaction's aging as the fairness engine.
  RepresentationConfig C = splitStriped(4);
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  for (int64_t I = 0; I < 8; ++I)
    ASSERT_TRUE(R.insert(key(Spec, I, 0), weight(Spec, 0)));

  constexpr unsigned Threads = 4, ScopesPerThread = 60;
  std::vector<uint64_t> Commits(Threads, 0);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Xoshiro256 Rng(1000 + T);
      for (unsigned I = 0; I < ScopesPerThread; ++I) {
        // Even threads walk keys ascending, odd descending: every pair
        // of rival scopes wants locks in conflicting orders.
        int64_t A = static_cast<int64_t>(Rng.nextBounded(7));
        int64_t B = A + 1;
        if (T & 1)
          std::swap(A, B);
        bool Ok = runTransaction(R, [&](Transaction &Txn) {
          unsigned Removed = 0;
          if (!Txn.remove(H.Rem, {Value::ofInt(A), Value::ofInt(0)},
                          &Removed))
            return true; // died: runTransaction retries
          if (!Txn.insert(H.Ins,
                          {Value::ofInt(A), Value::ofInt(0),
                           Value::ofInt(static_cast<int64_t>(I))}))
            return true;
          Txn.queryForUpdate(H.Succ, {Value::ofInt(B)});
          return true;
        });
        if (Ok)
          ++Commits[T];
      }
    });
  for (std::thread &W : Workers)
    W.join();
  for (unsigned T = 0; T < Threads; ++T)
    EXPECT_EQ(Commits[T], ScopesPerThread) << "thread " << T;
  ValidationResult V = R.verifyConsistency();
  EXPECT_TRUE(V.ok()) << V.str();
  EXPECT_EQ(R.size(), 8u);
}

//===----------------------------------------------------------------------===//
// Epoch abort-and-retry
//===----------------------------------------------------------------------===//

TEST(Txn, AdaptPlansMidScopeAbortsWithEpochChange) {
  RepresentationConfig C = splitStriped();
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  for (int64_t I = 0; I < 8; ++I)
    ASSERT_TRUE(R.insert(key(Spec, I, I), weight(Spec, I)));
  std::vector<Tuple> Before = R.scanAll();

  Transaction T(R);
  unsigned Removed = 0;
  ASSERT_TRUE(T.remove(H.Rem, {Value::ofInt(2), Value::ofInt(2)}, &Removed));
  ASSERT_EQ(Removed, 1u);
  // The scope holds locks but no op is in flight; the statistics walk
  // is race-free here (single thread), and the epoch bump retires the
  // scope's plans.
  R.adaptPlans();
  EXPECT_FALSE(T.insert(H.Ins, {Value::ofInt(90), Value::ofInt(0),
                                Value::ofInt(1)}));
  EXPECT_EQ(T.state(), TxnState::Aborted);
  EXPECT_EQ(T.abortCause(), TxnAbortCause::EpochChange);
  // The partial scope rolled back under the *old* plans' undo.
  EXPECT_EQ(R.scanAll(), Before);

  // The retry (fresh scope, new epoch) succeeds; handles rebind.
  EXPECT_TRUE(runTransaction(R, [&](Transaction &Txn) {
    Txn.remove(H.Rem, {Value::ofInt(2), Value::ofInt(2)});
    Txn.insert(H.Ins,
               {Value::ofInt(90), Value::ofInt(0), Value::ofInt(1)});
    return true;
  }));
  EXPECT_EQ(R.size(), 8u);
  ValidationResult V = R.verifyConsistency();
  EXPECT_TRUE(V.ok()) << V.str();
}

//===----------------------------------------------------------------------===//
// Transactions racing a live migration
//===----------------------------------------------------------------------===//

TEST(Txn, ScopesRaceMigrationThroughBothFlips) {
  // Worker threads run small transfer scopes (remove + insert pairs)
  // while the controlling thread migrates stick→split under traffic.
  // The oracle replays committed scopes only: a buffered mirror lost at
  // commit, or an aborted scope's write leaking into the shadow, shows
  // up as a final-state diff after the retirement flip.
  RepresentationConfig From = stickCoarse();
  ConcurrentRelation R(From);
  stress::TxnStressOptions Opts;
  Opts.Threads = 4;
  Opts.MaxOpsPerTxn = 3;
  Opts.ForcedAbortPct = 20;
  Opts.OpsBeforeAction = 600;
  Opts.OpsAfterAction = 600;
  Opts.Seed = 20120612;
  stress::TxnStressReport Rep = stress::runTxnStressWithOracle(
      R, Opts, [&] {
        MigrationResult Res = R.migrateTo(splitStriped());
        ASSERT_TRUE(Res.Ok) << Res.Error;
      });
  EXPECT_TRUE(Rep.Errors.empty())
      << Rep.Errors.size() << " oracle mismatches; first: "
      << Rep.Errors.front() << "; " << Rep.hint();
  EXPECT_GT(Rep.Committed, 0u);
  EXPECT_GT(Rep.ForcedAborts, 0u) << Rep.hint();
  EXPECT_EQ(R.config().Name, splitStriped().Name);
  std::vector<std::string> Diffs =
      stress::diffFinalState(R.scanAll(), R.spec(), Rep.Expected);
  EXPECT_TRUE(Diffs.empty())
      << Diffs.size() << " diffs; first: " << Diffs.front() << "; "
      << Rep.hint();
  ValidationResult V = R.verifyConsistency();
  EXPECT_TRUE(V.ok()) << V.str() << "; " << Rep.hint();
}

TEST(Txn, BufferedMirrorsFlushOnCommitAndDiscardOnAbort) {
  // Deterministic single-thread check of the dual-write interplay: a
  // MigrationObserver callback runs on the migrating thread with the
  // gate open, where scopes can run while the dual-write phase is
  // active.
  RepresentationConfig From = stickCoarse();
  ConcurrentRelation R(From);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  for (int64_t I = 0; I < 10; ++I)
    ASSERT_TRUE(R.insert(key(Spec, I, I), weight(Spec, I)));

  struct Hook : MigrationObserver {
    ConcurrentRelation &R;
    Handles &H;
    explicit Hook(ConcurrentRelation &R, Handles &H) : R(R), H(H) {}
    void onDualWriteStart() override {
      // Committed scope: its mutations must reach the shadow (via the
      // commit-time mirror flush) and survive retirement.
      Transaction T1(R);
      ASSERT_TRUE(T1.remove(H.Rem, {Value::ofInt(0), Value::ofInt(0)}));
      ASSERT_TRUE(T1.insert(
          H.Ins, {Value::ofInt(0), Value::ofInt(50), Value::ofInt(500)}));
      ASSERT_TRUE(T1.commit());
      // Aborted scope: nothing may reach the shadow.
      Transaction T2(R);
      ASSERT_TRUE(T2.remove(H.Rem, {Value::ofInt(1), Value::ofInt(1)}));
      ASSERT_TRUE(T2.insert(
          H.Ins, {Value::ofInt(1), Value::ofInt(60), Value::ofInt(600)}));
      T2.abort();
    }
  } Obs(R, H);

  MigrationResult Res = R.migrateTo(splitStriped(), &Obs);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  // Post-retirement state is served by the (former) shadow: the
  // committed scope is present, the aborted one invisible.
  EXPECT_TRUE(R.query(key(Spec, 0, 0), Spec.allColumns()).empty());
  EXPECT_EQ(R.query(key(Spec, 0, 50), Spec.allColumns()).size(), 1u);
  EXPECT_EQ(R.query(key(Spec, 1, 1), Spec.allColumns()).size(), 1u);
  EXPECT_TRUE(R.query(key(Spec, 1, 60), Spec.allColumns()).empty());
  EXPECT_EQ(R.size(), 10u);
  ValidationResult V = R.verifyConsistency();
  EXPECT_TRUE(V.ok()) << V.str();
}

//===----------------------------------------------------------------------===//
// Cross-shard scopes
//===----------------------------------------------------------------------===//

TEST(ShardedTxn, SingleShardScopePaysNoCoordination) {
  ShardedRelation R(splitStriped(), 4);
  const RelationSpec &Spec = R.spec();
  ShardedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
  ShardedRemove Rem = R.prepareRemove(Spec.cols({"src", "dst"}));

  ShardedTransaction T(R);
  // Same src → same routed shard for every op in the scope.
  ASSERT_TRUE(T.insert(Ins, {Value::ofInt(7), Value::ofInt(1),
                             Value::ofInt(10)}));
  ASSERT_TRUE(T.insert(Ins, {Value::ofInt(7), Value::ofInt(2),
                             Value::ofInt(20)}));
  EXPECT_EQ(T.shardsTouched(), 1u);
  ASSERT_TRUE(T.commit());
  EXPECT_EQ(R.size(), 2u);

  ShardedTransaction T2(R);
  unsigned Removed = 0;
  ASSERT_TRUE(T2.remove(Rem, {Value::ofInt(7), Value::ofInt(1)}, &Removed));
  EXPECT_EQ(Removed, 1u);
  T2.abort();
  EXPECT_EQ(R.size(), 2u); // rolled back on the one touched shard
}

TEST(ShardedTxn, CrossShardCommitAndAbortAreAtomic) {
  ShardedRelation R(splitStriped(), 4);
  const RelationSpec &Spec = R.spec();
  ShardedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
  ShardedRemove Rem = R.prepareRemove(Spec.cols({"src", "dst"}));
  ShardedQuery Pred = R.prepareQuery(Spec.cols({"dst"}),
                                     Spec.cols({"src", "weight"}));

  // Seed one tuple per src so the scope below spans several shards.
  for (int64_t S = 0; S < 16; ++S)
    ASSERT_TRUE(R.insert(key(Spec, S, 0), weight(Spec, S)));
  std::vector<Tuple> Before = R.scanAll();

  {
    ShardedTransaction T(R);
    for (int64_t S = 0; S < 16; ++S) {
      unsigned Removed = 0;
      ASSERT_TRUE(
          T.remove(Rem, {Value::ofInt(S), Value::ofInt(0)}, &Removed));
      ASSERT_EQ(Removed, 1u);
      ASSERT_TRUE(T.insert(Ins, {Value::ofInt(S), Value::ofInt(1),
                                 Value::ofInt(S * 2)}));
    }
    EXPECT_GT(T.shardsTouched(), 1u);
    // A transactional fan-out query inside the cross-shard scope.
    uint32_t Matches = 0;
    ASSERT_TRUE(T.query(Pred, {Value::ofInt(1)}, nullptr, &Matches));
    EXPECT_EQ(Matches, 16u);
    T.abort();
  }
  EXPECT_EQ(R.scanAll(), Before); // every shard rolled back

  {
    ShardedTransaction T(R);
    for (int64_t S = 0; S < 16; ++S) {
      ASSERT_TRUE(T.remove(Rem, {Value::ofInt(S), Value::ofInt(0)}));
      ASSERT_TRUE(T.insert(Ins, {Value::ofInt(S), Value::ofInt(1),
                                 Value::ofInt(S * 2)}));
    }
    ASSERT_TRUE(T.commit());
    EXPECT_GT(T.commitSeq(), 0u);
  }
  EXPECT_EQ(R.size(), 16u);
  for (int64_t S = 0; S < 16; ++S)
    EXPECT_EQ(R.query(key(Spec, S, 1), Spec.allColumns()).size(), 1u);
  ValidationResult V = R.verifyConsistency();
  EXPECT_TRUE(V.ok()) << V.str();
}

TEST(ShardedTxn, StressWithMidRunShardMigrationMatchesOracle) {
  // The acceptance-criteria run: 4 threads of transfer-style scopes
  // with forced aborts, a mid-run shard-at-a-time migration, and the
  // committed-txn-log oracle checked exactly.
  ShardedRelation R(stickCoarse(), 4);
  stress::TxnStressOptions Opts;
  Opts.Threads = 4;
  Opts.MaxOpsPerTxn = 3;
  Opts.ForcedAbortPct = 15;
  Opts.OpsBeforeAction = 500;
  Opts.OpsAfterAction = 500;
  Opts.Seed = 20120613;
  stress::TxnStressReport Rep = stress::runTxnStressWithOracle(
      R, Opts, [&] {
        for (unsigned S = 0; S < R.numShards(); ++S) {
          MigrationResult Res = R.migrateShard(S, splitStriped());
          ASSERT_TRUE(Res.Ok) << "shard " << S << ": " << Res.Error;
        }
      });
  EXPECT_TRUE(Rep.Errors.empty())
      << Rep.Errors.size() << " oracle mismatches; first: "
      << Rep.Errors.front() << "; " << Rep.hint();
  EXPECT_GT(Rep.Committed, 0u);
  EXPECT_GE(Rep.ForcedAborts * 100,
            Rep.TotalOps * (Opts.ForcedAbortPct / 2)) // ≥ ~half the target
      << Rep.hint();
  std::vector<std::string> Diffs =
      stress::diffFinalState(R.scanAll(), R.spec(), Rep.Expected);
  EXPECT_TRUE(Diffs.empty())
      << Diffs.size() << " diffs; first: " << Diffs.front() << "; "
      << Rep.hint();
  ValidationResult V = R.verifyConsistency();
  EXPECT_TRUE(V.ok()) << V.str() << "; " << Rep.hint();
}

//===----------------------------------------------------------------------===//
// Plan-cache and handle integration
//===----------------------------------------------------------------------===//

TEST(Txn, TxnSignaturesShareThePlanCache) {
  RepresentationConfig C = splitStriped();
  ConcurrentRelation R(C);
  const RelationSpec &Spec = R.spec();
  Handles H(R);
  ASSERT_TRUE(R.insert(key(Spec, 1, 2), weight(Spec, 3)));

  uint64_t Misses0 = R.planCacheMisses();
  for (int Round = 0; Round < 5; ++Round) {
    Transaction T(R);
    ASSERT_TRUE(T.queryForUpdate(H.Succ, {Value::ofInt(1)}));
    ASSERT_TRUE(T.remove(H.Rem, {Value::ofInt(1), Value::ofInt(2)}));
    ASSERT_TRUE(T.insert(H.Ins, {Value::ofInt(1), Value::ofInt(2),
                                 Value::ofInt(3)}));
    T.abort(); // exercises both undo plans too
  }
  uint64_t Misses = R.planCacheMisses() - Misses0;
  // One compile each: query-for-update, remove, undo-insert,
  // undo-remove (the seed insert above already compiled the insert
  // signature, which the scopes share) — every later scope hits.
  EXPECT_EQ(Misses, 4u);

  bool SawForUpdate = false, SawUndoIns = false, SawUndoRem = false;
  for (const PlanCache::Signature &Sig : R.compiledSignatures()) {
    SawForUpdate |= Sig.Op == PlanOp::QueryForUpdate;
    SawUndoIns |= Sig.Op == PlanOp::UndoInsert;
    SawUndoRem |= Sig.Op == PlanOp::UndoRemove;
  }
  EXPECT_TRUE(SawForUpdate);
  EXPECT_TRUE(SawUndoIns);
  EXPECT_TRUE(SawUndoRem);
}

//===----------------------------------------------------------------------===//
// LockOrderValidator
//===----------------------------------------------------------------------===//

TEST(LockOrderValidator, FlagsCrossSetInversions) {
  // Drive the validator directly (the LockSet hooks are debug-only;
  // this works in every build). Two domains: shard 0 and shard 1.
  int A = 0, B = 0; // stand-in set identities
  LockOrderKey K1{1, Tuple(), 0};
  LockOrderKey K2{2, Tuple(), 0};
  uint64_t Shard0 = 0, Shard1 = 1;

  LockOrderValidator::noteHeld(&A, Shard1, K1);
  // Blocking in a *lower* domain while holding a higher one: violation.
  EXPECT_TRUE(LockOrderValidator::wouldViolate(&B, Shard0, K2));
  // Blocking at or above the held domain: fine.
  EXPECT_FALSE(LockOrderValidator::wouldViolate(&B, Shard1, K2));
  // Same domain, lower key than the other set's max: violation.
  LockOrderValidator::noteHeld(&A, Shard1, K2);
  EXPECT_TRUE(LockOrderValidator::wouldViolate(&B, Shard1, K1));
  // The holder itself is exempt (its own order is LockSet's duty).
  EXPECT_FALSE(LockOrderValidator::wouldViolate(&A, Shard1, K1));
  // Rollback lowers the recorded max; release drops the entry.
  LockOrderValidator::noteRolledBack(&A, Shard1, true, K1);
  EXPECT_FALSE(LockOrderValidator::wouldViolate(&B, Shard1, K1));
  LockOrderValidator::noteReleased(&A);
  EXPECT_FALSE(LockOrderValidator::wouldViolate(&B, Shard0, K1));
  EXPECT_EQ(LockOrderValidator::liveSets(), 0u);
}
