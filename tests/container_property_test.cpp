//===- tests/container_property_test.cpp - Kind-parameterized sweeps ----------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Property sweeps over every container kind through the type-erased
/// AnyContainer interface the runtime uses: map semantics against a
/// model, scan ordering promised by the traits, idempotence properties,
/// and churn behaviour. One parameterized suite, instantiated per kind.
///
//===----------------------------------------------------------------------===//

#include "runtime/AnyContainer.h"
#include "runtime/NodeInstance.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <map>

using namespace crs;

namespace {

/// Map container kinds (everything except the single-entry cell).
const ContainerKind MapKinds[] = {
    ContainerKind::HashMap,
    ContainerKind::TreeMap,
    ContainerKind::ConcurrentHashMap,
    ContainerKind::ConcurrentSkipListMap,
    ContainerKind::CowArrayMap,
};

Tuple keyOf(int64_t K) { return Tuple::of({{0, Value::ofInt(K)}}); }

class ContainerProperty : public ::testing::TestWithParam<ContainerKind> {};

TEST_P(ContainerProperty, AgreesWithModelUnderRandomOps) {
  std::unique_ptr<AnyContainer> C = AnyContainer::create(GetParam());
  std::map<int64_t, NodeInstance *> Model;
  std::map<int64_t, NodeInstPtr> Owned;
  Xoshiro256 Rng(0xC0FFEE ^ static_cast<uint64_t>(GetParam()));

  for (int Step = 0; Step < 2500; ++Step) {
    int64_t K = static_cast<int64_t>(Rng.nextBounded(48));
    switch (Rng.nextBounded(4)) {
    case 0: {
      NodeInstPtr V = std::make_shared<NodeInstance>();
      bool A = C->insertOrAssign(keyOf(K), V);
      bool B = Model.emplace(K, V.get()).second;
      if (!B)
        Model[K] = V.get();
      Owned[K] = V;
      ASSERT_EQ(A, B) << "insert step " << Step;
      break;
    }
    case 1: {
      ASSERT_EQ(C->erase(keyOf(K)), Model.erase(K) > 0)
          << "erase step " << Step;
      break;
    }
    case 2: {
      NodeInstPtr Out;
      bool A = C->lookup(keyOf(K), Out);
      auto It = Model.find(K);
      ASSERT_EQ(A, It != Model.end()) << "lookup step " << Step;
      if (A)
        ASSERT_EQ(Out.get(), It->second);
      break;
    }
    default: {
      std::map<int64_t, const NodeInstance *> Seen;
      C->scan([&](const Tuple &Key, const NodeInstPtr &Val) {
        Seen.emplace(Key.get(0).asInt(), Val.get());
        return true;
      });
      ASSERT_EQ(Seen.size(), Model.size()) << "scan step " << Step;
      for (auto &[MK, MV] : Model)
        ASSERT_EQ(Seen.at(MK), MV);
      break;
    }
    }
    ASSERT_EQ(C->size(), Model.size());
  }
}

TEST_P(ContainerProperty, ScanOrderMatchesTraits) {
  std::unique_ptr<AnyContainer> C = AnyContainer::create(GetParam());
  Xoshiro256 Rng(77);
  for (int I = 0; I < 300; ++I)
    C->insertOrAssign(keyOf(static_cast<int64_t>(Rng.nextBounded(100000))),
                      std::make_shared<NodeInstance>());
  bool Sorted = true;
  int64_t Prev = INT64_MIN;
  size_t Seen = 0;
  C->scan([&](const Tuple &Key, const NodeInstPtr &) {
    int64_t K = Key.get(0).asInt();
    if (K <= Prev)
      Sorted = false;
    Prev = K;
    ++Seen;
    return true;
  });
  EXPECT_EQ(Seen, C->size());
  if (containerTraits(GetParam()).SortedScan)
    EXPECT_TRUE(Sorted) << containerKindName(GetParam());
}

TEST_P(ContainerProperty, EraseToEmptyAndReuse) {
  std::unique_ptr<AnyContainer> C = AnyContainer::create(GetParam());
  for (int Round = 0; Round < 5; ++Round) {
    for (int64_t K = 0; K < 64; ++K)
      ASSERT_TRUE(C->insertOrAssign(keyOf(K),
                                    std::make_shared<NodeInstance>()));
    ASSERT_EQ(C->size(), 64u);
    for (int64_t K = 63; K >= 0; --K)
      ASSERT_TRUE(C->erase(keyOf(K)));
    ASSERT_EQ(C->size(), 0u);
    NodeInstPtr Out;
    ASSERT_FALSE(C->lookup(keyOf(0), Out));
  }
}

TEST_P(ContainerProperty, ValuesKeepOwnersAlive) {
  // The runtime relies on containers holding shared ownership: an
  // instance reachable through an entry must not die.
  std::unique_ptr<AnyContainer> C = AnyContainer::create(GetParam());
  std::weak_ptr<NodeInstance> Weak;
  {
    NodeInstPtr V = std::make_shared<NodeInstance>();
    Weak = V;
    C->insertOrAssign(keyOf(7), std::move(V));
  }
  EXPECT_FALSE(Weak.expired());
  C->erase(keyOf(7));
  EXPECT_TRUE(Weak.expired());
}

TEST_P(ContainerProperty, EarlyStopVisitsPrefixOnly) {
  std::unique_ptr<AnyContainer> C = AnyContainer::create(GetParam());
  for (int64_t K = 0; K < 100; ++K)
    C->insertOrAssign(keyOf(K), std::make_shared<NodeInstance>());
  int Visits = 0;
  C->scan([&](const Tuple &, const NodeInstPtr &) { return ++Visits < 7; });
  EXPECT_EQ(Visits, 7);
}

INSTANTIATE_TEST_SUITE_P(
    AllMapKinds, ContainerProperty, ::testing::ValuesIn(MapKinds),
    [](const ::testing::TestParamInfo<ContainerKind> &Info) {
      return containerKindName(Info.param);
    });

} // namespace
