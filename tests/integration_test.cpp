//===- tests/integration_test.cpp - Cross-module integration scenarios --------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end scenarios spanning the whole pipeline on non-default
/// combinations: speculative placements on the dcache relation (string
/// keys through the §4.5 protocol), copy-on-write containers inside a
/// synthesized representation, statistics-driven replanning under load,
/// and the wider-schema scheduler decomposition from the examples.
///
//===----------------------------------------------------------------------===//

#include "lockplace/PlacementSchemes.h"
#include "decomp/Shapes.h"
#include "rel/RefRelation.h"
#include "runtime/ConcurrentRelation.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <thread>

using namespace crs;

namespace {

TEST(Integration, DCacheUnderSpeculativePlacement) {
  // The Fig. 2 relation with the §4.5 placement: the global
  // (parent, name) hashtable edge becomes speculative — path lookups
  // lock only the dentry they hit.
  auto Spec = std::make_shared<RelationSpec>(makeDCacheSpec());
  auto D = std::make_shared<Decomposition>(makeDCacheDecomposition(*Spec));
  auto P = std::make_shared<LockPlacement>(
      makeSpeculativePlacement(*D, 64));
  ASSERT_TRUE(P->validate().ok()) << P->validate().str();
  ASSERT_TRUE(P->validateContainerSafety().ok());
  // The ConcurrentHashMap edge ρ->y must have been made speculative.
  bool AnySpec = false;
  for (const auto &E : D->edges())
    AnySpec |= P->edgePlacement(E.Id).Speculative;
  ASSERT_TRUE(AnySpec);

  ConcurrentRelation R({Spec, D, P, "dcache/spec"});
  RefRelation Ref(*Spec);
  Xoshiro256 Rng(5150);
  const char *Names[] = {"etc", "usr", "var", "home", "tmp", "opt"};
  for (int Step = 0; Step < 500; ++Step) {
    int64_t Parent = static_cast<int64_t>(Rng.nextBounded(5));
    const char *Name = Names[Rng.nextBounded(6)];
    Tuple Key = Tuple::of({{Spec->col("parent"), Value::ofInt(Parent)},
                           {Spec->col("name"), Value::ofString(Name)}});
    switch (Rng.nextBounded(4)) {
    case 0: {
      Tuple Child = Tuple::of(
          {{Spec->col("child"),
            Value::ofInt(static_cast<int64_t>(Rng.nextBounded(50)))}});
      ASSERT_EQ(R.insert(Key, Child), Ref.insert(Key, Child));
      break;
    }
    case 1:
      ASSERT_EQ(R.remove(Key), Ref.remove(Key));
      break;
    case 2:
      // Path lookup: exercises SpecLookup with a composite string key.
      ASSERT_EQ(R.query(Key, Spec->cols({"child"})),
                Ref.query(Key, Spec->cols({"child"})));
      break;
    default:
      ASSERT_EQ(R.query(Tuple::of({{Spec->col("parent"),
                                    Value::ofInt(Parent)}}),
                        Spec->cols({"name", "child"})),
                Ref.query(Tuple::of({{Spec->col("parent"),
                                      Value::ofInt(Parent)}}),
                          Spec->cols({"name", "child"})));
      break;
    }
  }
  EXPECT_EQ(R.scanAll(), Ref.allTuples());
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

TEST(Integration, DCacheSpeculativeConcurrentPathLookups) {
  auto Spec = std::make_shared<RelationSpec>(makeDCacheSpec());
  auto D = std::make_shared<Decomposition>(makeDCacheDecomposition(*Spec));
  auto P = std::make_shared<LockPlacement>(
      makeSpeculativePlacement(*D, 64));
  ConcurrentRelation R({Spec, D, P, "dcache/spec"});

  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(T);
      for (int I = 0; I < 800; ++I) {
        int64_t Parent = static_cast<int64_t>(Rng.nextBounded(4));
        std::string Name = "f" + std::to_string(Rng.nextBounded(8));
        Tuple Key =
            Tuple::of({{Spec->col("parent"), Value::ofInt(Parent)},
                       {Spec->col("name"), Value::ofString(Name)}});
        switch (Rng.nextBounded(3)) {
        case 0:
          R.insert(Key, Tuple::of({{Spec->col("child"),
                                    Value::ofInt(T * 100 + I)}}));
          break;
        case 1:
          R.remove(Key);
          break;
        default:
          R.query(Key, Spec->cols({"child"}));
          break;
        }
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

TEST(Integration, CowContainersInsideARepresentation) {
  // Copy-on-write array maps as the second level: read-mostly
  // adjacency sets with snapshot scans.
  auto Spec = std::make_shared<RelationSpec>(makeGraphSpec());
  auto D = std::make_shared<Decomposition>(makeGraphDecomposition(
      *Spec, GraphShape::Split,
      {ContainerKind::ConcurrentHashMap, ContainerKind::CowArrayMap}));
  auto P = std::make_shared<LockPlacement>(makeStripedPlacement(*D, 64));
  ASSERT_TRUE(P->validateContainerSafety().ok());
  ConcurrentRelation R({Spec, D, P, "split/cow"});
  RefRelation Ref(*Spec);
  Xoshiro256 Rng(808);
  for (int I = 0; I < 400; ++I) {
    int64_t S = static_cast<int64_t>(Rng.nextBounded(6));
    int64_t Dst = static_cast<int64_t>(Rng.nextBounded(6));
    Tuple Key = Tuple::of({{Spec->col("src"), Value::ofInt(S)},
                           {Spec->col("dst"), Value::ofInt(Dst)}});
    if (Rng.nextBounded(3) == 0) {
      ASSERT_EQ(R.remove(Key), Ref.remove(Key));
    } else {
      Tuple W = Tuple::of({{Spec->col("weight"), Value::ofInt(I)}});
      ASSERT_EQ(R.insert(Key, W), Ref.insert(Key, W));
    }
  }
  EXPECT_EQ(R.scanAll(), Ref.allTuples());
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST(Integration, AdaptPlansMidWorkload) {
  auto Spec = std::make_shared<RelationSpec>(makeGraphSpec());
  auto D = std::make_shared<Decomposition>(
      makeGraphDecomposition(*Spec, GraphShape::Split));
  auto P = std::make_shared<LockPlacement>(makeStripedPlacement(*D, 64));
  ConcurrentRelation R({Spec, D, P, "split/adaptive"});
  RefRelation Ref(*Spec);
  Xoshiro256 Rng(33);

  auto Burst = [&](int N) {
    for (int I = 0; I < N; ++I) {
      int64_t S = static_cast<int64_t>(Rng.nextBounded(10));
      int64_t Dst = static_cast<int64_t>(Rng.nextBounded(10));
      Tuple Key = Tuple::of({{Spec->col("src"), Value::ofInt(S)},
                             {Spec->col("dst"), Value::ofInt(Dst)}});
      switch (Rng.nextBounded(3)) {
      case 0: {
        Tuple W = Tuple::of({{Spec->col("weight"), Value::ofInt(I)}});
        ASSERT_EQ(R.insert(Key, W), Ref.insert(Key, W));
        break;
      }
      case 1:
        ASSERT_EQ(R.remove(Key), Ref.remove(Key));
        break;
      default:
        ASSERT_EQ(R.query(Tuple::of({{Spec->col("dst"),
                                      Value::ofInt(Dst)}}),
                          Spec->cols({"src", "weight"})),
                  Ref.query(Tuple::of({{Spec->col("dst"),
                                        Value::ofInt(Dst)}}),
                            Spec->cols({"src", "weight"})));
        break;
      }
    }
  };
  Burst(200);
  R.adaptPlans(); // replan against measured occupancy
  Burst(200);
  R.adaptPlans();
  Burst(200);
  EXPECT_EQ(R.scanAll(), Ref.allTuples());
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST(Integration, HuskCleanupKeepsInstancesBounded) {
  // Insert/remove churn on one key space must not leak node instances
  // (husk cleanup in the remove epilogue).
  auto Spec = std::make_shared<RelationSpec>(makeGraphSpec());
  auto D = std::make_shared<Decomposition>(
      makeGraphDecomposition(*Spec, GraphShape::Split));
  auto P = std::make_shared<LockPlacement>(makeFinePlacement(*D));
  ConcurrentRelation R({Spec, D, P, "split/churn"});
  const RelationSpec &S = *Spec;
  for (int Round = 0; Round < 50; ++Round) {
    for (int64_t I = 0; I < 8; ++I)
      R.insert(Tuple::of({{S.col("src"), Value::ofInt(I)},
                          {S.col("dst"), Value::ofInt(I + 1)}}),
               Tuple::of({{S.col("weight"), Value::ofInt(Round)}}));
    for (int64_t I = 0; I < 8; ++I)
      R.remove(Tuple::of({{S.col("src"), Value::ofInt(I)},
                          {S.col("dst"), Value::ofInt(I + 1)}}));
  }
  EXPECT_EQ(R.size(), 0u);
  RelationStatistics Stats = R.collectStatistics();
  // Only the root instance should remain reachable.
  EXPECT_EQ(Stats.NodeInstances, 1u) << "husk instances leaked";
  EXPECT_TRUE(R.verifyConsistency().ok());
}

} // namespace
