//===- tests/plan_cache_test.cpp - Plan cache + mutation-plan executor -------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// The sharded plan cache under contention (many threads racing on cold
/// signatures must agree on one published plan and then hit), and the
/// executor's restart path (release-and-retry) with the write statements
/// of planner-emitted insert/remove plans in the mix.
///
//===----------------------------------------------------------------------===//

#include "autotune/Autotuner.h"
#include "decomp/Shapes.h"
#include "lockplace/PlacementSchemes.h"
#include "runtime/ConcurrentRelation.h"
#include "runtime/PlanCache.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace crs;

namespace {

Tuple key(const RelationSpec &Spec, int64_t S, int64_t D) {
  return Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                    {Spec.col("dst"), Value::ofInt(D)}});
}

Tuple weight(const RelationSpec &Spec, int64_t W) {
  return Tuple::of({{Spec.col("weight"), Value::ofInt(W)}});
}

TEST(PlanCache, ColdSignatureRaceCompilesOnce) {
  // Many threads race getOrCompile on the same cold signature: exactly
  // one compilation must win and every thread must get that plan.
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Split);
  LockPlacement P = makeFinePlacement(D);
  QueryPlanner Planner(D, P);
  PlanCache Cache;

  constexpr unsigned NumThreads = 16;
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::atomic<unsigned> Compiles{0};
  std::vector<const Plan *> Got(NumThreads);
  std::vector<std::thread> Threads;
  ColumnSet DomS = Spec.cols({"src"});
  ColumnSet Out = Spec.cols({"dst", "weight"});
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Ready.fetch_add(1);
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      Got[T] = Cache.getOrCompile(PlanOp::Query, DomS.bits(), Out.bits(),
                                  [&] {
                                    Compiles.fetch_add(1);
                                    return Planner.planQuery(DomS, Out);
                                  });
    });
  while (Ready.load() != NumThreads)
    std::this_thread::yield();
  Go.store(true, std::memory_order_release);
  for (auto &Th : Threads)
    Th.join();

  EXPECT_EQ(Compiles.load(), 1u);
  EXPECT_EQ(Cache.misses(), 1u); // only the winning compilation counts
  for (unsigned T = 1; T < NumThreads; ++T)
    EXPECT_EQ(Got[T], Got[0]) << "thread " << T;

  // Warm lookups return the same publication and never miss again.
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Cache.find(PlanOp::Query, DomS.bits(), Out.bits()),
              Got[0]);
  EXPECT_EQ(Cache.misses(), 1u);
}

TEST(PlanCache, DistinctSignaturesDoNotCollide) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Split);
  LockPlacement P = makeFinePlacement(D);
  QueryPlanner Planner(D, P);
  PlanCache Cache;

  // Same column bits under different ops, and different column bits
  // under the same op, must all be distinct entries.
  ColumnSet K = Spec.cols({"src", "dst"});
  auto Q = Cache.getOrCompile(PlanOp::Query, K.bits(),
                              Spec.cols({"weight"}).bits(), [&] {
                                return Planner.planQuery(
                                    K, Spec.cols({"weight"}));
                              });
  auto Rm = Cache.getOrCompile(PlanOp::Remove, K.bits(), 0,
                               [&] { return Planner.planRemove(K); });
  auto In = Cache.getOrCompile(PlanOp::Insert, K.bits(), 0,
                               [&] { return Planner.planInsert(K); });
  EXPECT_NE(Q, Rm);
  EXPECT_NE(Rm, In);
  EXPECT_EQ(Rm->Op, PlanOp::Remove);
  EXPECT_EQ(In->Op, PlanOp::Insert);
  EXPECT_EQ(Cache.find(PlanOp::Remove, K.bits(), 0), Rm);
  EXPECT_EQ(Cache.find(PlanOp::Insert, K.bits(), 0), In);
}

TEST(PlanCache, RelationWarmsUpAndStopsMissing) {
  // Through the relation API: after the first operation of each
  // signature, every further operation is a wait-free hit — the miss
  // (compilation) counter must freeze at the signature count.
  RepresentationConfig Config = makeGraphRepresentation(
      {GraphShape::Split, PlacementSchemeKind::Fine, 1,
       ContainerKind::HashMap, ContainerKind::HashMap});
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);

  for (int Round = 0; Round < 2; ++Round) {
    for (int I = 0; I < 50; ++I) {
      R.insert(key(Spec, I, I + 1), weight(Spec, I));
      R.query(Tuple::of({{Spec.col("src"), Value::ofInt(I)}}),
              Spec.cols({"dst", "weight"}));
      R.remove(key(Spec, I, I + 1));
    }
    // Three signatures (insert, query, remove) → exactly three
    // compilations, no matter how many operations ran.
    EXPECT_EQ(R.planCacheMisses(), 3u) << "round " << Round;
  }
}

TEST(PlanCache, AdaptPlansIsSafeUnderConcurrentReaders) {
  // The header contract: the statistics *measurement* must be quiescent
  // against mutations, but concurrent operations may keep using old
  // plans safely while adaptPlans swaps the planner and clears the
  // cache. Readers race wait-free cache lookups (including cold
  // recompiles) against repeated replans; TSan polices the synchrony.
  RepresentationConfig Config = makeGraphRepresentation(
      {GraphShape::Split, PlacementSchemeKind::Fine, 1,
       ContainerKind::HashMap, ContainerKind::HashMap});
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);
  for (int I = 0; I < 16; ++I)
    R.insert(key(Spec, I, I + 1), weight(Spec, I));

  std::atomic<bool> Stop{false};
  std::vector<std::thread> Readers;
  for (unsigned T = 0; T < 3; ++T)
    Readers.emplace_back([&, T] {
      Xoshiro256 Rng(31 + T);
      while (!Stop.load(std::memory_order_acquire)) {
        int64_t S = static_cast<int64_t>(Rng.nextBounded(16));
        auto Out = R.query(Tuple::of({{Spec.col("src"), Value::ofInt(S)}}),
                           Spec.cols({"dst", "weight"}));
        ASSERT_EQ(Out.size(), 1u);
      }
    });
  for (int I = 0; I < 50; ++I)
    R.adaptPlans(); // no mutations in flight: measurement is quiescent
  Stop.store(true, std::memory_order_release);
  for (auto &Th : Readers)
    Th.join();
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST(ExecutorRestartPath, WriteStatementsSurviveReleaseAndRetry) {
  // Speculative placement, a tiny key space, and concurrent writers:
  // readers guess stale targets and must release everything and retry,
  // while insert/remove traffic runs through the planner-emitted write
  // statements. The put-if-absent accounting (winners − removals ==
  // final size) catches any write lost or duplicated across restarts.
  RepresentationConfig Config = makeGraphRepresentation(
      {GraphShape::Split, PlacementSchemeKind::Speculative, 8,
       ContainerKind::ConcurrentHashMap, ContainerKind::HashMap});
  ASSERT_TRUE(Config.Placement);
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);

  constexpr int64_t Keys = 3;
  constexpr unsigned Writers = 3;
  constexpr int OpsPerWriter = 6000;
  std::atomic<int64_t> Balance{0}; // inserts won − tuples removed
  std::atomic<bool> Stop{false};

  std::vector<std::thread> Threads;
  for (unsigned W = 0; W < Writers; ++W)
    Threads.emplace_back([&, W] {
      Xoshiro256 Rng(101 + W);
      for (int I = 0; I < OpsPerWriter; ++I) {
        int64_t S = static_cast<int64_t>(Rng.nextBounded(Keys));
        int64_t D = static_cast<int64_t>(Rng.nextBounded(Keys));
        if (Rng.nextBounded(2)) {
          if (R.insert(key(Spec, S, D), weight(Spec, I)))
            Balance.fetch_add(1, std::memory_order_relaxed);
        } else {
          Balance.fetch_sub(
              static_cast<int64_t>(R.remove(key(Spec, S, D))),
              std::memory_order_relaxed);
        }
      }
    });
  std::vector<std::thread> Readers;
  for (unsigned T = 0; T < 2; ++T)
    Readers.emplace_back([&, T] {
      Xoshiro256 Rng(77 + T);
      while (!Stop.load(std::memory_order_acquire)) {
        int64_t S = static_cast<int64_t>(Rng.nextBounded(Keys));
        auto Out = R.query(Tuple::of({{Spec.col("src"), Value::ofInt(S)}}),
                           Spec.cols({"dst", "weight"}));
        ASSERT_LE(Out.size(), static_cast<size_t>(Keys));
      }
    });
  for (auto &Th : Threads)
    Th.join();
  Stop.store(true, std::memory_order_release);
  for (auto &Th : Readers)
    Th.join();

  EXPECT_EQ(static_cast<int64_t>(R.size()), Balance.load());
  EXPECT_EQ(R.size(), R.scanAll().size());
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
  // With three hot keys and concurrent removal of guessed targets, the
  // guess-verify protocol virtually always trips at least once; the
  // counter is the observable sign the release-and-retry path ran.
  SUCCEED() << "restarts: " << R.restarts();
}

} // namespace
