//===- tests/wal_test.cpp - Durability, recovery, and replication -------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// src/wal: the durability and replication pipeline. Covers the wire
/// format (roundtrip, CRC rejection, torn-tail detection at every
/// truncation), group-commit append ordering across threads, Sync-mode
/// durability-on-return, checkpoint + crash recovery against the
/// StressHarness oracle — including the deterministic torn-tail
/// truncation and the kill-during-checkpoint fallback — follower
/// relations over the live commit stream (equality with the
/// committed-only oracle, watermark monotonicity, gap healing through
/// a deliberately tiny channel), and the wait-die lock-priority
/// discipline on transaction scopes.
///
//===----------------------------------------------------------------------===//

#include "StressHarness.h"
#include "autotune/Autotuner.h"
#include "sync/CommitClock.h"
#include "sync/LockSet.h"
#include "txn/Transaction.h"
#include "wal/Checkpoint.h"
#include "wal/Follower.h"
#include "wal/Wal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>

using namespace crs;

namespace {

Tuple key(const RelationSpec &Spec, int64_t S, int64_t D) {
  return Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                    {Spec.col("dst"), Value::ofInt(D)}});
}

Tuple weight(const RelationSpec &Spec, int64_t W) {
  return Tuple::of({{Spec.col("weight"), Value::ofInt(W)}});
}

Tuple edge(const RelationSpec &Spec, int64_t S, int64_t D, int64_t W) {
  return Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                    {Spec.col("dst"), Value::ofInt(D)},
                    {Spec.col("weight"), Value::ofInt(W)}});
}

RepresentationConfig stickCoarse() {
  return makeGraphRepresentation({GraphShape::Stick,
                                  PlacementSchemeKind::Coarse, 1,
                                  ContainerKind::HashMap,
                                  ContainerKind::TreeMap});
}

RepresentationConfig splitStriped(uint32_t Stripes = 64) {
  return makeGraphRepresentation({GraphShape::Split,
                                  PlacementSchemeKind::Striped, Stripes,
                                  ContainerKind::ConcurrentHashMap,
                                  ContainerKind::TreeMap});
}

/// A self-cleaning scratch directory for log and checkpoint files.
struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/crs_wal_XXXXXX";
    char *P = ::mkdtemp(Buf);
    EXPECT_NE(P, nullptr);
    Path = P ? P : "/tmp/crs_wal_fallback";
  }
  ~TempDir() {
    if (DIR *D = ::opendir(Path.c_str())) {
      while (struct dirent *E = ::readdir(D)) {
        std::string N = E->d_name;
        if (N != "." && N != "..")
          ::unlink((Path + "/" + N).c_str());
      }
      ::closedir(D);
    }
    ::rmdir(Path.c_str());
  }
};

std::vector<Tuple> sorted(std::vector<Tuple> V) {
  std::sort(V.begin(), V.end(), TupleLess());
  return V;
}

WriteAheadLog::Options walOpts(const std::string &Dir, unsigned Partitions = 1,
                               FsyncMode Mode = FsyncMode::None) {
  WriteAheadLog::Options O;
  O.Dir = Dir;
  O.Partitions = Partitions;
  O.Fsync = Mode; // tests default to no fsync: same code path, fast disks
  O.ParkMicros = 100;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===//
// Wire format
//===----------------------------------------------------------------------===//

TEST(WalFormat, EncodeDecodeRoundtripIncludingStrings) {
  // String values serialize their bytes (intern ids are process-local);
  // the format test uses raw column ids — it is spec-agnostic.
  std::vector<WalRecord> In(3);
  In[0].CommitSeq = 7;
  In[0].Shard = 2;
  In[0].Muts.push_back(
      {WalOp::Insert, Tuple::of({{ColumnId(1), Value::ofInt(42)},
                                 {ColumnId(2), Value::ofInt(-9)}})});
  In[1].CommitSeq = 8;
  In[1].Shard = 0;
  In[1].Muts.push_back(
      {WalOp::Insert, Tuple::of({{ColumnId(1), Value::ofString("alpha")},
                                 {ColumnId(7), Value::ofInt(1)}})});
  In[1].Muts.push_back(
      {WalOp::Remove, Tuple::of({{ColumnId(1), Value::ofString("")}})});
  In[2].CommitSeq = 9; // an empty-mutation record is legal on the wire
  In[2].Shard = 5;     // (checkpoints use it for header/trailer marks)

  std::vector<uint8_t> Buf;
  std::vector<size_t> Ends;
  for (const WalRecord &R : In) {
    walEncodeRecord(Buf, R.CommitSeq, R.Shard, R.Muts.data(), R.Muts.size());
    Ends.push_back(Buf.size());
  }

  size_t Off = 0;
  for (size_t I = 0; I < In.size(); ++I) {
    WalRecord Out;
    size_t Used = walDecodeRecord(Buf.data() + Off, Buf.size() - Off, Out);
    ASSERT_GT(Used, 0u) << "record " << I;
    Off += Used;
    EXPECT_EQ(Off, Ends[I]);
    EXPECT_EQ(Out.CommitSeq, In[I].CommitSeq);
    EXPECT_EQ(Out.Shard, In[I].Shard);
    ASSERT_EQ(Out.Muts.size(), In[I].Muts.size());
    for (size_t J = 0; J < Out.Muts.size(); ++J) {
      EXPECT_EQ(Out.Muts[J].Op, In[I].Muts[J].Op);
      EXPECT_TRUE(Out.Muts[J].Full == In[I].Muts[J].Full)
          << "record " << I << " mutation " << J;
    }
  }
  EXPECT_EQ(Off, Buf.size());
  EXPECT_TRUE(In[1].Muts[0].Full.get(ColumnId(1)).isString());
}

TEST(WalFormat, StreamingCommitEncodeIsByteIdenticalToArrayForm) {
  // The transaction commit hook encodes its WAL record straight from
  // the undo log through the streaming logCommit overload — projection
  // happens during encoding, no WalMutation vector and no projected
  // tuple copies (ROADMAP 2c). The contract is byte identity: the same
  // mutations through the array overload (fed eagerly projected
  // tuples) and through the streaming overload must produce the same
  // wire bytes. Append each through its own partition and diff the
  // files.
  TempDir Dir;
  auto Log = WriteAheadLog::open(walOpts(Dir.Path, /*Partitions=*/2));
  ASSERT_NE(Log, nullptr);

  // Full tuples carry an extra column the projection strips; one value
  // is a string so both kinds cross the encoder.
  ColumnSet Project = ColumnSet::of(ColumnId(1)) | ColumnSet::of(ColumnId(3));
  std::vector<std::pair<WalOp, Tuple>> Muts;
  Muts.emplace_back(WalOp::Insert,
                    Tuple::of({{ColumnId(1), Value::ofInt(42)},
                               {ColumnId(2), Value::ofInt(-7)},
                               {ColumnId(3), Value::ofString("beta")}}));
  Muts.emplace_back(WalOp::Remove,
                    Tuple::of({{ColumnId(1), Value::ofInt(9)},
                               {ColumnId(2), Value::ofInt(1)}}));
  Muts.emplace_back(WalOp::Insert,
                    Tuple::of({{ColumnId(3), Value::ofString("")}}));

  std::vector<WalMutation> Projected;
  for (const auto &[Op, Full] : Muts)
    Projected.push_back({Op, Full.project(Project)});
  Log->logCommit(/*Partition=*/0, /*CommitSeq=*/11, /*Shard=*/3,
                 Projected.data(), Projected.size());
  Log->logCommit(/*Partition=*/1, /*CommitSeq=*/11, /*Shard=*/3,
                 Muts.size(), Project,
                 [&](size_t I, const Tuple *&Full) {
                   Full = &Muts[I].second;
                   return Muts[I].first;
                 });
  Log->flush();

  auto slurp = [](const std::string &Path) {
    std::vector<uint8_t> Bytes;
    int Fd = ::open(Path.c_str(), O_RDONLY);
    EXPECT_GE(Fd, 0) << Path;
    if (Fd < 0)
      return Bytes;
    uint8_t Buf[4096];
    ssize_t N;
    while ((N = ::read(Fd, Buf, sizeof(Buf))) > 0)
      Bytes.insert(Bytes.end(), Buf, Buf + N);
    ::close(Fd);
    return Bytes;
  };
  std::vector<uint8_t> A = slurp(walPartitionPath(Dir.Path, 0));
  std::vector<uint8_t> B = slurp(walPartitionPath(Dir.Path, 1));
  ASSERT_FALSE(A.empty());
  EXPECT_EQ(A, B);

  // And the bytes decode back to the projected mutations.
  WalRecord Out;
  ASSERT_GT(walDecodeRecord(B.data(), B.size(), Out), 0u);
  ASSERT_EQ(Out.Muts.size(), Muts.size());
  for (size_t I = 0; I < Out.Muts.size(); ++I)
    EXPECT_TRUE(Out.Muts[I].Full == Projected[I].Full) << "mutation " << I;
}

TEST(WalFormat, EveryTruncationOfARecordIsTorn) {
  WalMutation M{WalOp::Insert,
                Tuple::of({{ColumnId(3), Value::ofInt(123456789)},
                           {ColumnId(4), Value::ofString("payload")}})};
  std::vector<uint8_t> Buf;
  walEncodeRecord(Buf, 11, 0, &M, 1);

  WalRecord Out;
  for (size_t Len = 0; Len < Buf.size(); ++Len)
    EXPECT_EQ(walDecodeRecord(Buf.data(), Len, Out), 0u) << "len " << Len;
  EXPECT_EQ(walDecodeRecord(Buf.data(), Buf.size(), Out), Buf.size());

  // A flipped payload byte fails the CRC even at full length.
  for (size_t I = 8; I < Buf.size(); I += 3) {
    std::vector<uint8_t> Bad = Buf;
    Bad[I] ^= 0x40;
    EXPECT_EQ(walDecodeRecord(Bad.data(), Bad.size(), Out), 0u)
        << "flipped byte " << I;
  }
}

TEST(WalFormat, PartitionScanStopsCleanlyAtTornTail) {
  TempDir D;
  std::vector<uint8_t> Buf;
  WalMutation M{WalOp::Insert, Tuple::of({{ColumnId(1), Value::ofInt(1)}})};
  walEncodeRecord(Buf, 1, 0, &M, 1);
  size_t FirstEnd = Buf.size();
  M.Full = Tuple::of({{ColumnId(1), Value::ofInt(2)}});
  walEncodeRecord(Buf, 2, 0, &M, 1);

  std::string Path = walPartitionPath(D.Path, 0);
  for (size_t Len : {FirstEnd, FirstEnd + 5, Buf.size()}) {
    int Fd = ::open(Path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    ASSERT_GE(Fd, 0);
    ASSERT_EQ(::write(Fd, Buf.data(), Len), static_cast<ssize_t>(Len));
    ::close(Fd);
    WalReadResult R = readWalPartition(Path);
    ASSERT_TRUE(R.ok()) << R.Error;
    if (Len == FirstEnd) {
      EXPECT_EQ(R.Records.size(), 1u);
      EXPECT_FALSE(R.TornTail);
    } else if (Len == Buf.size()) {
      EXPECT_EQ(R.Records.size(), 2u);
      EXPECT_FALSE(R.TornTail);
    } else {
      EXPECT_EQ(R.Records.size(), 1u);
      EXPECT_TRUE(R.TornTail);
      EXPECT_EQ(R.ValidBytes, FirstEnd);
    }
  }
  // A partition that never existed reads as empty, not as an error.
  WalReadResult Missing = readWalPartition(walPartitionPath(D.Path, 9));
  EXPECT_TRUE(Missing.ok());
  EXPECT_TRUE(Missing.Records.empty());
}

//===----------------------------------------------------------------------===//
// Group commit
//===----------------------------------------------------------------------===//

TEST(Wal, ConcurrentAppendsKeepPerThreadOrder) {
  TempDir D;
  std::string Err;
  auto Log = WriteAheadLog::open(walOpts(D.Path), &Err);
  ASSERT_TRUE(Log) << Err;

  constexpr unsigned Threads = 4, PerThread = 200;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      for (unsigned I = 0; I < PerThread; ++I) {
        WalMutation M{WalOp::Insert,
                      Tuple::of({{ColumnId(1), Value::ofInt(I)}})};
        // Shard doubles as the writer id so file order is attributable.
        Log->logCommit(0, nextCommitSeq(), /*Shard=*/T, &M, 1);
      }
    });
  for (std::thread &W : Workers)
    W.join();
  Log->flush();

  EXPECT_EQ(Log->recordsAppended(), uint64_t(Threads) * PerThread);
  WalReadResult R = readWalPartition(walPartitionPath(D.Path, 0));
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.TornTail);
  ASSERT_EQ(R.Records.size(), size_t(Threads) * PerThread);
  EXPECT_EQ(Log->bytesAppended(), R.ValidBytes);
  EXPECT_GE(Log->syncRounds(), 1u);

  // Each writer appended its records in sequence order under the
  // partition mutex, so its subsequence of the file is seq-ascending.
  std::vector<uint64_t> LastSeq(Threads, 0);
  std::vector<unsigned> Count(Threads, 0);
  for (const WalRecord &Rec : R.Records) {
    ASSERT_LT(Rec.Shard, Threads);
    EXPECT_GT(Rec.CommitSeq, LastSeq[Rec.Shard]);
    LastSeq[Rec.Shard] = Rec.CommitSeq;
    ++Count[Rec.Shard];
  }
  for (unsigned T = 0; T < Threads; ++T)
    EXPECT_EQ(Count[T], PerThread) << "writer " << T;
}

TEST(Wal, SyncModeIsDurableOnReturn) {
  TempDir D;
  std::string Err;
  auto Log = WriteAheadLog::open(walOpts(D.Path, 1, FsyncMode::Sync), &Err);
  ASSERT_TRUE(Log) << Err;

  // A lone writer must be flushed within roughly one park window, not
  // wait for company; and its record must be on disk when the call
  // returns — no flush() needed.
  auto T0 = std::chrono::steady_clock::now();
  WalMutation M{WalOp::Insert, Tuple::of({{ColumnId(1), Value::ofInt(77)}})};
  Log->logCommit(0, nextCommitSeq(), 0, &M, 1);
  auto Waited = std::chrono::steady_clock::now() - T0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(Waited)
                .count(),
            2000);

  WalReadResult R = readWalPartition(walPartitionPath(D.Path, 0));
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Records.size(), 1u);
  EXPECT_EQ(R.Records[0].Muts.size(), 1u);
}

TEST(Wal, ChannelDropsWhenFullButStreamSeqStaysDense) {
  CommitChannel Ch(/*Capacity=*/2);
  for (uint64_t I = 1; I <= 5; ++I) {
    WalRecord Rec;
    Rec.CommitSeq = I;
    Ch.publish(std::move(Rec));
  }
  std::vector<CommitChannel::Item> Items;
  EXPECT_EQ(Ch.drain(Items), 2u);
  ASSERT_EQ(Items.size(), 2u);
  EXPECT_EQ(Items[0].StreamSeq, 1u);
  EXPECT_EQ(Items[1].StreamSeq, 2u);
  EXPECT_EQ(Ch.published(), 5u); // dropped records still advance it:
  EXPECT_EQ(Ch.dropped(), 3u);   // the consumer sees the jump as a gap
}

//===----------------------------------------------------------------------===//
// Recovery
//===----------------------------------------------------------------------===//

TEST(WalRecovery, BareMutationsReplayExactly) {
  TempDir D;
  std::string Err;
  auto Log = WriteAheadLog::open(walOpts(D.Path), &Err);
  ASSERT_TRUE(Log) << Err;

  ConcurrentRelation R(stickCoarse());
  const RelationSpec &Spec = R.spec();
  R.attachWal(*Log);
  for (int64_t S = 0; S < 20; ++S)
    ASSERT_TRUE(R.insert(key(Spec, S, S + 1), weight(Spec, 10 * S)));
  for (int64_t S = 0; S < 20; S += 3)
    EXPECT_EQ(R.remove(key(Spec, S, S + 1)), 1u);
  // Losing mutations (a duplicate insert, a miss remove) must not log.
  EXPECT_FALSE(R.insert(key(Spec, 1, 2), weight(Spec, 999)));
  EXPECT_EQ(R.remove(key(Spec, 500, 500)), 0u);
  R.detachWal();
  Log->flush();

  ConcurrentRelation Fresh(splitStriped()); // recovery is shape-agnostic
  RecoveryResult Res = recoverRelation(Fresh, D.Path);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.CheckpointSeq, 0u); // no checkpoint: full-log replay
  EXPECT_EQ(Res.RecordsReplayed, 20u + 7u);
  EXPECT_EQ(Res.Anomalies, 0u);
  EXPECT_FALSE(Res.TornTail);
  EXPECT_EQ(sorted(Fresh.scanAll()), sorted(R.scanAll()));
  ValidationResult V = Fresh.verifyConsistency();
  EXPECT_TRUE(V.ok()) << V.str();
}

TEST(WalRecovery, StressedShardedFleetRecoversFromCheckpointPlusLog) {
  // The acceptance-criteria shape: a 4-thread mixed transactional
  // workload over a sharded fleet with a rolling checkpoint taken
  // mid-run under live traffic; a fresh fleet rebuilt from checkpoint +
  // WAL must match the committed-scope oracle exactly.
  TempDir D;
  std::string Err;
  ShardedRelation R(stickCoarse(), 4);
  auto Log = WriteAheadLog::open(walOpts(D.Path, R.numShards()), &Err);
  ASSERT_TRUE(Log) << Err;
  R.attachWal(*Log);

  stress::TxnStressOptions Opts;
  Opts.Threads = 4;
  Opts.MaxOpsPerTxn = 3;
  Opts.ForcedAbortPct = 15;
  Opts.OpsBeforeAction = 800;
  Opts.OpsAfterAction = 800;
  Opts.Seed = 20120614;
  stress::TxnStressReport Rep = stress::runTxnStressWithOracle(
      R, Opts, [&] {
        std::string CkptErr;
        ASSERT_TRUE(writeShardedCheckpoint(R, D.Path, &CkptErr)) << CkptErr;
      });
  ASSERT_TRUE(Rep.Errors.empty())
      << Rep.Errors.size() << " oracle mismatches; first: "
      << Rep.Errors.front() << "; " << Rep.hint();
  EXPECT_GT(Rep.Committed, 0u);
  R.detachWal();
  Log->flush();

  ShardedRelation Fresh(stickCoarse(), 4);
  RecoveryResult Res = recoverShardedRelation(Fresh, D.Path);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_GT(Res.CheckpointSeq, 0u) << "mid-run checkpoint not used";
  EXPECT_GT(Res.RecordsReplayed, 0u) << "post-checkpoint suffix not replayed";
  std::vector<std::string> Diffs =
      stress::diffFinalState(Fresh.scanAll(), Fresh.spec(), Rep.Expected);
  EXPECT_TRUE(Diffs.empty())
      << Diffs.size() << " diffs; first: " << Diffs.front() << "; "
      << Rep.hint();
  EXPECT_EQ(sorted(Fresh.scanAll()), R.scanAll()); // sharded scan sorts
  ValidationResult V = Fresh.verifyConsistency();
  EXPECT_TRUE(V.ok()) << V.str() << "; " << Rep.hint();
}

TEST(WalRecovery, TornTailIsTruncatedAndStateMatchesAdjustedOracle) {
  // Deterministic crash tail: run the stress workload, then cut the
  // log mid-way through its final record — the torn record is the last
  // file-order mutation of every key it touches (the WAL ordering
  // contract), so the expected recovered state is the oracle with that
  // one scope's effects unwound.
  TempDir D;
  std::string Err;
  ConcurrentRelation R(splitStriped());
  auto Log = WriteAheadLog::open(walOpts(D.Path), &Err);
  ASSERT_TRUE(Log) << Err;
  R.attachWal(*Log);

  stress::TxnStressOptions Opts;
  Opts.Threads = 4;
  Opts.MaxOpsPerTxn = 3;
  Opts.ForcedAbortPct = 10;
  Opts.OpsBeforeAction = 400;
  Opts.OpsAfterAction = 400;
  Opts.Seed = 20120615;
  stress::TxnStressReport Rep = stress::runTxnStressWithOracle(R, Opts);
  ASSERT_TRUE(Rep.Errors.empty()) << Rep.hint();
  R.detachWal();
  Log->flush();
  Log.reset();

  std::string Path = walPartitionPath(D.Path, 0);
  WalReadResult Full = readWalPartition(Path);
  ASSERT_TRUE(Full.ok()) << Full.Error;
  ASSERT_FALSE(Full.TornTail);
  ASSERT_GE(Full.Records.size(), 2u);

  // Find a final record with at least one mutation (pure-query scopes
  // never log, so the tail record always has some; be defensive).
  const WalRecord &Torn = Full.Records.back();
  ASSERT_FALSE(Torn.Muts.empty());
  ASSERT_TRUE(truncateWalPartition(Path, Full.ValidBytes - 3));

  // Unwind the torn scope from the oracle, newest mutation first.
  auto Expected = Rep.Expected;
  const RelationSpec &Spec = R.spec();
  ColumnId Src = Spec.col("src"), Dst = Spec.col("dst"),
           Weight = Spec.col("weight");
  for (auto It = Torn.Muts.rbegin(); It != Torn.Muts.rend(); ++It) {
    auto K = std::make_pair(It->Full.get(Src).asInt(),
                            It->Full.get(Dst).asInt());
    if (It->Op == WalOp::Insert)
      Expected.erase(K);
    else
      Expected[K] = It->Full.get(Weight).asInt();
  }

  ConcurrentRelation Fresh(stickCoarse());
  RecoveryResult Res = recoverRelation(Fresh, D.Path);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_TRUE(Res.TornTail);
  EXPECT_GT(Res.TruncatedBytes, 0u);
  std::vector<std::string> Diffs =
      stress::diffFinalState(Fresh.scanAll(), Fresh.spec(), Expected);
  EXPECT_TRUE(Diffs.empty())
      << Diffs.size() << " diffs; first: " << Diffs.front() << "; "
      << Rep.hint();

  // The truncation healed the file: a reopened log appends cleanly
  // after the last whole record.
  auto Reopened = WriteAheadLog::open(walOpts(D.Path), &Err);
  ASSERT_TRUE(Reopened) << Err;
  WalMutation M{WalOp::Insert, edge(Spec, 9999, 9999, 1)};
  Reopened->logCommit(0, nextCommitSeq(), 0, &M, 1);
  Reopened->flush();
  WalReadResult After = readWalPartition(Path);
  ASSERT_TRUE(After.ok()) << After.Error;
  EXPECT_FALSE(After.TornTail);
  EXPECT_EQ(After.Records.size(), Full.Records.size());
}

TEST(WalRecovery, KillDuringCheckpointFallsBackToOlderCheckpoint) {
  TempDir D;
  std::string Err;
  ConcurrentRelation R(stickCoarse());
  const RelationSpec &Spec = R.spec();
  auto Log = WriteAheadLog::open(walOpts(D.Path), &Err);
  ASSERT_TRUE(Log) << Err;
  R.attachWal(*Log);

  for (int64_t S = 0; S < 30; ++S)
    ASSERT_TRUE(R.insert(key(Spec, S, 1), weight(Spec, S)));
  uint64_t W1 = 0;
  ASSERT_TRUE(writeCheckpoint(R, D.Path, 0, &W1, &Err)) << Err;
  ASSERT_GT(W1, 0u);

  for (int64_t S = 0; S < 30; S += 2)
    EXPECT_EQ(R.remove(key(Spec, S, 1)), 1u);
  uint64_t W2 = 0;
  ASSERT_TRUE(writeCheckpoint(R, D.Path, 0, &W2, &Err)) << Err;
  ASSERT_GT(W2, W1);
  for (int64_t S = 100; S < 110; ++S)
    ASSERT_TRUE(R.insert(key(Spec, S, 1), weight(Spec, S)));
  R.detachWal();
  Log->flush();
  Log.reset();

  // Simulate dying mid-checkpoint: cut the newer file short of its
  // completion trailer. (An interrupted writer normally leaves only a
  // .tmp file — also exercised below — but a torn final file is the
  // belt-and-suspenders case content validation exists for.)
  std::string Newer = checkpointPath(D.Path, 0, W2);
  struct stat St;
  ASSERT_EQ(::stat(Newer.c_str(), &St), 0);
  ASSERT_EQ(::truncate(Newer.c_str(), St.st_size - 5), 0);
  // And a stray temp file from another interrupted attempt.
  std::string Stray = checkpointPath(D.Path, 0, W2 + 50) + ".tmp";
  int Fd = ::open(Stray.c_str(), O_CREAT | O_WRONLY, 0644);
  ASSERT_GE(Fd, 0);
  ::close(Fd);

  ConcurrentRelation Fresh(stickCoarse());
  RecoveryResult Res = recoverRelation(Fresh, D.Path);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.CheckpointSeq, W1) << "did not fall back past torn ckpt";
  EXPECT_GT(Res.RecordsReplayed, 0u);
  EXPECT_EQ(sorted(Fresh.scanAll()), sorted(R.scanAll()));
  ValidationResult V = Fresh.verifyConsistency();
  EXPECT_TRUE(V.ok()) << V.str();
}

//===----------------------------------------------------------------------===//
// Follower relations
//===----------------------------------------------------------------------===//

TEST(Follower, TracksCommittedStateUnderStress) {
  // A follower on a *different representation* than the primary,
  // consuming the live channel while 4 threads commit, force-abort, and
  // die on conflicts. Once the writers quiesce and the applier drains,
  // the replica must equal both the primary and the committed-only
  // oracle — an uncommitted or out-of-order mutation would persist as
  // a phantom/rewritten edge.
  TempDir D;
  std::string Err;
  ConcurrentRelation R(stickCoarse());
  auto Log = WriteAheadLog::open(walOpts(D.Path), &Err);
  ASSERT_TRUE(Log) << Err;
  CommitChannel Ch;
  Log->attachChannel(&Ch);
  R.attachWal(*Log);
  FollowerRelation F(splitStriped(), Ch, [&] { return R.scanAll(); });

  stress::TxnStressOptions Opts;
  Opts.Threads = 4;
  Opts.MaxOpsPerTxn = 3;
  Opts.ForcedAbortPct = 15;
  Opts.OpsBeforeAction = 600;
  Opts.OpsAfterAction = 600;
  Opts.Seed = 20120616;
  uint64_t MidWatermark = 0;
  stress::TxnStressReport Rep = stress::runTxnStressWithOracle(
      R, Opts, [&] { MidWatermark = F.appliedSeq(); });
  ASSERT_TRUE(Rep.Errors.empty()) << Rep.hint();

  F.stop(); // drains everything published before the writers stopped
  EXPECT_GT(F.appliedRecords(), 0u);
  EXPECT_GE(F.appliedSeq(), MidWatermark) << "watermark regressed";
  if (Ch.dropped() == 0) // healing folds records into backfill walks
    EXPECT_EQ(F.appliedRecords(), Log->recordsAppended());

  std::vector<std::string> Diffs = stress::diffFinalState(
      F.relation().scanAll(), F.relation().spec(), Rep.Expected);
  EXPECT_TRUE(Diffs.empty())
      << Diffs.size() << " follower diffs; first: " << Diffs.front() << "; "
      << Rep.hint();
  EXPECT_EQ(sorted(F.relation().scanAll()), sorted(R.scanAll()));
  ValidationResult V = F.relation().verifyConsistency();
  EXPECT_TRUE(V.ok()) << V.str() << "; " << Rep.hint();
  R.detachWal();
}

TEST(Follower, HealsGapsThroughATinyChannel) {
  // A 4-slot channel under 4 writer threads guarantees drops; every
  // drop forces the backfill walk. Convergence to the committed state
  // is the whole point of the healing protocol.
  TempDir D;
  std::string Err;
  ConcurrentRelation R(stickCoarse());
  auto Log = WriteAheadLog::open(walOpts(D.Path), &Err);
  ASSERT_TRUE(Log) << Err;
  CommitChannel Ch(/*Capacity=*/4);
  Log->attachChannel(&Ch);
  R.attachWal(*Log);
  FollowerRelation::Options FO;
  FO.PollMicros = 2000; // park long enough that the channel overflows
  FollowerRelation F(stickCoarse(), Ch, [&] { return R.scanAll(); }, FO);

  stress::TxnStressOptions Opts;
  Opts.Threads = 4;
  Opts.MaxOpsPerTxn = 2;
  Opts.ForcedAbortPct = 10;
  Opts.OpsBeforeAction = 500;
  Opts.OpsAfterAction = 500;
  Opts.Seed = 20120617;
  stress::TxnStressReport Rep = stress::runTxnStressWithOracle(R, Opts);
  ASSERT_TRUE(Rep.Errors.empty()) << Rep.hint();

  F.stop();
  EXPECT_GT(Ch.dropped(), 0u) << "channel never overflowed; grow the run";
  EXPECT_GT(F.gapsHealed(), 0u);
  EXPECT_EQ(sorted(F.relation().scanAll()), sorted(R.scanAll()))
      << Rep.hint();
  std::vector<std::string> Diffs = stress::diffFinalState(
      F.relation().scanAll(), F.relation().spec(), Rep.Expected);
  EXPECT_TRUE(Diffs.empty())
      << Diffs.size() << " follower diffs; first: " << Diffs.front() << "; "
      << Rep.hint();
  R.detachWal();
}

TEST(Follower, ManualModePublishesWatermarkAfterMutations) {
  FollowerRelation F(stickCoarse());
  const RelationSpec &Spec = F.relation().spec();
  WalRecord Rec;
  Rec.CommitSeq = 41;
  Rec.Muts.push_back({WalOp::Insert, edge(Spec, 1, 2, 30)});
  Rec.Muts.push_back({WalOp::Insert, edge(Spec, 2, 3, 40)});
  F.apply(Rec);
  EXPECT_EQ(F.appliedSeq(), 41u);
  EXPECT_EQ(F.relation().size(), 2u);
  EXPECT_TRUE(F.waitApplied(41, /*TimeoutMs=*/10));
  EXPECT_FALSE(F.waitApplied(42, /*TimeoutMs=*/10));

  WalRecord Rm;
  Rm.CommitSeq = 45;
  Rm.Muts.push_back({WalOp::Remove, edge(Spec, 1, 2, 30)});
  F.apply(Rm);
  EXPECT_EQ(F.appliedSeq(), 45u);
  EXPECT_EQ(F.query(key(Spec, 1, 2), Spec.allColumns()).size(), 0u);
  EXPECT_EQ(F.query(key(Spec, 2, 3), Spec.allColumns()).size(), 1u);
  EXPECT_EQ(F.anomalies(), 0u);
}

TEST(Follower, FileTailerSeesExactlyTheAppendedRecords) {
  TempDir D;
  std::string Err;
  auto Log = WriteAheadLog::open(walOpts(D.Path, /*Partitions=*/2), &Err);
  ASSERT_TRUE(Log) << Err;

  WalTailer Tailer(D.Path, 2);
  std::vector<WalRecord> Seen;
  EXPECT_EQ(Tailer.poll(Seen), 0u);

  for (int I = 0; I < 6; ++I) {
    WalMutation M{WalOp::Insert,
                  Tuple::of({{ColumnId(1), Value::ofInt(I)}})};
    Log->logCommit(/*Partition=*/I % 2, nextCommitSeq(), 0, &M, 1);
  }
  Log->flush();
  EXPECT_EQ(Tailer.poll(Seen), 6u);
  EXPECT_EQ(Tailer.poll(Seen), 0u); // no re-reads: the cursor advanced
  for (int I = 0; I < 3; ++I) {
    WalMutation M{WalOp::Remove,
                  Tuple::of({{ColumnId(1), Value::ofInt(I)}})};
    Log->logCommit(0, nextCommitSeq(), 0, &M, 1);
  }
  Log->flush();
  EXPECT_EQ(Tailer.poll(Seen), 3u);
  EXPECT_EQ(Seen.size(), 9u);
}

//===----------------------------------------------------------------------===//
// Segmentation (ROADMAP 2a: bounded log growth)
//===----------------------------------------------------------------------===//

TEST(WalSegments, RotationSplitsTheLogAndRecoveryMergesEverySegment) {
  TempDir D;
  std::string Err;
  WriteAheadLog::Options O = walOpts(D.Path);
  O.SegmentBytes = 256; // a few records per segment
  auto Log = WriteAheadLog::open(O, &Err);
  ASSERT_TRUE(Log) << Err;

  ConcurrentRelation R(stickCoarse());
  const RelationSpec &Spec = R.spec();
  R.attachWal(*Log);
  // Flush between small batches: each flush round lands whole in the
  // active segment and rotates once it crosses the threshold.
  for (int64_t S = 0; S < 60; ++S) {
    ASSERT_TRUE(R.insert(key(Spec, S, S + 1), weight(Spec, 10 * S)));
    if (S % 4 == 3)
      Log->flush();
  }
  for (int64_t S = 0; S < 60; S += 5)
    EXPECT_EQ(R.remove(key(Spec, S, S + 1)), 1u);
  R.detachWal();
  Log->flush();
  EXPECT_GT(listWalSegments(D.Path, 0).size(), 2u)
      << "SegmentBytes=256 over ~72 records must rotate repeatedly";

  // Recovery stitches the segments back together in index order.
  ConcurrentRelation Fresh(splitStriped());
  RecoveryResult Res = recoverRelation(Fresh, D.Path);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.RecordsReplayed, 60u + 12u);
  EXPECT_EQ(Res.Anomalies, 0u);
  EXPECT_FALSE(Res.TornTail);
  EXPECT_EQ(sorted(Fresh.scanAll()), sorted(R.scanAll()));
}

TEST(WalSegments, CheckpointPrunesSegmentsBelowTheWatermark) {
  TempDir D;
  std::string Err;
  WriteAheadLog::Options O = walOpts(D.Path);
  O.SegmentBytes = 256;
  auto Log = WriteAheadLog::open(O, &Err);
  ASSERT_TRUE(Log) << Err;

  ConcurrentRelation R(stickCoarse());
  const RelationSpec &Spec = R.spec();
  R.attachWal(*Log);
  for (int64_t S = 0; S < 60; ++S) {
    ASSERT_TRUE(R.insert(key(Spec, S, S + 1), weight(Spec, 10 * S)));
    if (S % 4 == 3)
      Log->flush();
  }
  Log->flush();
  size_t Before = listWalSegments(D.Path, 0).size();
  ASSERT_GT(Before, 2u);

  // The checkpoint covers every committed record, so every *sealed*
  // segment is prunable; only the active segment must survive.
  uint64_t Watermark = 0;
  ASSERT_TRUE(writeCheckpoint(R, D.Path, /*Shard=*/0, &Watermark, &Err))
      << Err;
  EXPECT_GT(Watermark, 0u);
  EXPECT_EQ(listWalSegments(D.Path, 0).size(), 1u);

  // More commits land in (and beyond) the surviving active segment;
  // recovery = checkpoint + surviving log, bit-for-bit the same state.
  for (int64_t S = 100; S < 110; ++S) {
    ASSERT_TRUE(R.insert(key(Spec, S, S + 1), weight(Spec, S)));
    Log->flush();
  }
  R.detachWal();
  Log->flush();
  ConcurrentRelation Fresh(splitStriped());
  RecoveryResult Res = recoverRelation(Fresh, D.Path);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.CheckpointSeq, Watermark);
  EXPECT_EQ(Res.RecordsReplayed, 10u);
  EXPECT_EQ(sorted(Fresh.scanAll()), sorted(R.scanAll()));
}

TEST(WalSegments, ReopenedLogPrunesSegmentsSealedByAPastLife) {
  // Segments sealed before a restart have no in-memory max-commit-seq;
  // pruneSegments recovers it by scanning the file once.
  TempDir D;
  std::string Err;
  WriteAheadLog::Options O = walOpts(D.Path);
  O.SegmentBytes = 256;
  ConcurrentRelation R(stickCoarse());
  const RelationSpec &Spec = R.spec();
  {
    auto Log = WriteAheadLog::open(O, &Err);
    ASSERT_TRUE(Log) << Err;
    R.attachWal(*Log);
    for (int64_t S = 0; S < 60; ++S) {
      ASSERT_TRUE(R.insert(key(Spec, S, S + 1), weight(Spec, 10 * S)));
      if (S % 4 == 3)
        Log->flush();
    }
    R.detachWal();
  } // clean shutdown: dtor flushes
  ASSERT_GT(listWalSegments(D.Path, 0).size(), 2u);

  auto Reopened = WriteAheadLog::open(O, &Err);
  ASSERT_TRUE(Reopened) << Err;
  R.attachWal(*Reopened);
  uint64_t Watermark = 0;
  ASSERT_TRUE(writeCheckpoint(R, D.Path, /*Shard=*/0, &Watermark, &Err))
      << Err;
  R.detachWal();
  EXPECT_EQ(listWalSegments(D.Path, 0).size(), 1u);

  ConcurrentRelation Fresh(splitStriped());
  RecoveryResult Res = recoverRelation(Fresh, D.Path);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.RecordsReplayed, 0u); // the checkpoint covers it all
  EXPECT_EQ(sorted(Fresh.scanAll()), sorted(R.scanAll()));
}

TEST(WalSegments, TailerFollowsTheCursorAcrossRotations) {
  TempDir D;
  std::string Err;
  WriteAheadLog::Options O = walOpts(D.Path);
  O.SegmentBytes = 128;
  auto Log = WriteAheadLog::open(O, &Err);
  ASSERT_TRUE(Log) << Err;

  WalTailer Tailer(D.Path, 1);
  std::vector<WalRecord> Seen;
  for (int I = 0; I < 40; ++I) {
    WalMutation M{WalOp::Insert,
                  Tuple::of({{ColumnId(1), Value::ofInt(I)}})};
    Log->logCommit(0, nextCommitSeq(), 0, &M, 1);
    if (I % 8 == 7) {
      Log->flush();
      Tailer.poll(Seen); // drain mid-stream so rotation happens between polls
    }
  }
  Log->flush();
  Tailer.poll(Seen);
  ASSERT_GT(listWalSegments(D.Path, 0).size(), 1u);
  ASSERT_EQ(Seen.size(), 40u);
  // Exactly the appended stream, in partition file order.
  for (int I = 0; I < 40; ++I)
    EXPECT_EQ(Seen[I].Muts.at(0).Full.get(ColumnId(1)).asInt(), I);
  EXPECT_EQ(Tailer.poll(Seen), 0u); // cursor parked at the active tail
}

//===----------------------------------------------------------------------===//
// Wait-die
//===----------------------------------------------------------------------===//

TEST(WaitDie, OwnerStampsPublishRetractAndReportOnce) {
  // The deterministic mechanics under the arbitration: an exclusive
  // acquisition by a stamped scope publishes its birth stamp to the
  // lock's owner table; a contender's failed try captures it; the
  // capture is consumed by the read (one report per failed try, so a
  // stale stamp can never kill a later, unrelated retry); release
  // retracts the stamp; bare operations (stamp 0) never touch it.
  PhysicalLock L;
  LockOrderKey K; // default order position is fine for a single lock

  LockSet Old;
  Old.setBirthStamp(10);
  Old.acquire(L, K, LockMode::Exclusive);
  EXPECT_EQ(L.ownerStamp(), 10u);

  LockSet Young;
  Young.setBirthStamp(20);
  EXPECT_EQ(Young.tryAcquire(L, K, LockMode::Exclusive),
            AcquireResult::WouldBlock);
  EXPECT_EQ(Young.takeLastConflictStamp(), 10u) << "holder age not seen";
  EXPECT_EQ(Young.takeLastConflictStamp(), 0u) << "stamp must consume";

  Old.releaseAll();
  EXPECT_EQ(L.ownerStamp(), 0u) << "release must retract the stamp";
  EXPECT_EQ(Young.tryAcquire(L, K, LockMode::Exclusive), AcquireResult::Ok);
  EXPECT_EQ(L.ownerStamp(), 20u);
  Young.releaseAll();
  EXPECT_EQ(L.ownerStamp(), 0u);

  LockSet Bare; // birth stamp 0: the bare-operation fast path
  Bare.acquire(L, K, LockMode::Exclusive);
  EXPECT_EQ(L.ownerStamp(), 0u) << "bare ops must not stamp owner tables";
  Bare.releaseAll();
}

TEST(WaitDie, OlderRequesterWaitsOutAYoungerHolder) {
  ConcurrentRelation R(stickCoarse());
  const RelationSpec &Spec = R.spec();
  ColumnSet Key = ColumnSet::of(Spec.col("src")) | ColumnSet::of(Spec.col("dst"));
  auto Ins = R.prepareInsert(Key);

  std::atomic<bool> Held{false}, Release{false};
  std::thread Young([&] {
    Transaction T(R, /*Patience=*/0, /*Birth=*/1000);
    ASSERT_TRUE(T.insert(Ins, {Value::ofInt(3), Value::ofInt(4),
                               Value::ofInt(1)}));
    Held.store(true, std::memory_order_release);
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::yield();
    ASSERT_TRUE(T.commit());
  });
  while (!Held.load(std::memory_order_acquire))
    std::this_thread::yield();

  // The older scope outranks the holder: under wait-die it waits, so
  // with the holder committing promptly it must win — possibly over a
  // few attempts if the bounded seniority budget expires first.
  std::thread Releaser([&] { Release.store(true, std::memory_order_release); });
  bool Won = false;
  for (unsigned Attempt = 0; Attempt < 50 && !Won; ++Attempt) {
    Transaction Old(R, /*Patience=*/Attempt, /*Birth=*/7);
    if (Old.insert(Ins, {Value::ofInt(3), Value::ofInt(4),
                         Value::ofInt(2)}))
      Won = Old.commit();
  }
  Releaser.join();
  Young.join();
  EXPECT_TRUE(Won);
  // The young scope's insert won the key; the old one lost the
  // put-if-absent race after waiting — exactly one row, weight 1.
  std::vector<Tuple> Rows = R.query(key(Spec, 3, 4), Spec.allColumns());
  ASSERT_EQ(Rows.size(), 1u);
  EXPECT_EQ(Rows[0].get(Spec.col("weight")).asInt(), 1);
}

TEST(WaitDie, StressedScopesStayLive) {
  // The discipline must not dent liveness or exactness: the standard
  // oracle run with wait-die active (runTransaction threads birth
  // stamps through retries) still commits and matches.
  ConcurrentRelation R(splitStriped());
  stress::TxnStressOptions Opts;
  Opts.Threads = 4;
  Opts.MaxOpsPerTxn = 3;
  Opts.ForcedAbortPct = 10;
  Opts.SrcPerThread = 4; // contended: plenty of conflicts to arbitrate
  Opts.OpsBeforeAction = 500;
  Opts.OpsAfterAction = 500;
  Opts.Seed = 20120618;
  stress::TxnStressReport Rep = stress::runTxnStressWithOracle(R, Opts);
  ASSERT_TRUE(Rep.Errors.empty()) << Rep.hint();
  EXPECT_GT(Rep.Committed, 0u);
  std::vector<std::string> Diffs =
      stress::diffFinalState(R.scanAll(), R.spec(), Rep.Expected);
  EXPECT_TRUE(Diffs.empty())
      << Diffs.size() << " diffs; first: " << Diffs.front() << "; "
      << Rep.hint();
}
