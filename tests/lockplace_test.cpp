//===- tests/lockplace_test.cpp - Lock placement tests ------------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "decomp/Shapes.h"
#include "lockplace/PlacementSchemes.h"

#include <gtest/gtest.h>

using namespace crs;

namespace {

TEST(PlacementSchemes, CanonicalSchemesAreWellFormed) {
  RelationSpec Spec = makeGraphSpec();
  for (GraphShape S :
       {GraphShape::Stick, GraphShape::Split, GraphShape::Diamond}) {
    GraphContainers CC{ContainerKind::ConcurrentHashMap,
                       ContainerKind::ConcurrentHashMap};
    Decomposition D = makeGraphDecomposition(Spec, S, CC);
    EXPECT_TRUE(makeCoarsePlacement(D).validate().ok());
    EXPECT_TRUE(makeFinePlacement(D).validate().ok());
    EXPECT_TRUE(makeStripedPlacement(D, 64).validate().ok());
    EXPECT_TRUE(makeSpeculativePlacement(D, 64).validate().ok());
  }
}

TEST(Placement, CoarseSerializesEverything) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Split);
  LockPlacement P = makeCoarsePlacement(D);
  for (const auto &E : D.edges()) {
    EXPECT_EQ(P.edgePlacement(E.Id).Host, D.root());
    EXPECT_FALSE(P.allowsConcurrentAccess(E.Id));
  }
  // Non-concurrent containers are therefore legal everywhere.
  EXPECT_TRUE(P.validateContainerSafety().ok());
}

TEST(Placement, StripingRequiresConcurrencySafety) {
  RelationSpec Spec = makeGraphSpec();
  // HashMap at the striped level: illegal.
  Decomposition D = makeGraphDecomposition(
      Spec, GraphShape::Split,
      {ContainerKind::HashMap, ContainerKind::HashMap});
  LockPlacement P = makeStripedPlacement(D, 1024);
  EXPECT_TRUE(P.validate().ok());
  ValidationResult Safety = P.validateContainerSafety();
  ASSERT_FALSE(Safety.ok());
  EXPECT_NE(Safety.str().find("HashMap"), std::string::npos);

  // ConcurrentHashMap at the striped level: legal. The second level is
  // serialized by per-source locks, so HashMap is fine there.
  Decomposition D2 = makeGraphDecomposition(
      Spec, GraphShape::Split,
      {ContainerKind::ConcurrentHashMap, ContainerKind::HashMap});
  EXPECT_TRUE(makeStripedPlacement(D2, 1024).validateContainerSafety().ok());
}

TEST(Placement, StripeCountOneIsAlwaysSerialized) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(
      Spec, GraphShape::Stick, {ContainerKind::HashMap,
                                ContainerKind::HashMap});
  LockPlacement P = makeStripedPlacement(D, 1);
  EXPECT_TRUE(P.validate().ok());
  EXPECT_TRUE(P.validateContainerSafety().ok());
  for (const auto &E : D.edges())
    EXPECT_FALSE(P.allowsConcurrentAccess(E.Id));
}

TEST(Placement, SpeculativeRequiresLinearizableLookups) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(
      Spec, GraphShape::Diamond,
      {ContainerKind::HashMap, ContainerKind::HashMap});
  // Force a speculative placement onto a non-concurrent container.
  LockPlacement P = makeFinePlacement(D);
  P.setEdge(0, {D.root(), Spec.cols({"src"}), /*Speculative=*/true});
  ValidationResult R = P.validate();
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("speculative"), std::string::npos);
}

TEST(Placement, HostMustDominateSource) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Diamond);
  LockPlacement P = makeFinePlacement(D);
  // Edge 4 is z->w; x (node 1) does not dominate z (z reachable via y).
  P.setEdge(4, {1, ColumnSet::empty(), false});
  ValidationResult R = P.validate();
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("dominate"), std::string::npos);
}

TEST(Placement, PathSharingConditionEnforced) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Stick);
  LockPlacement P = makeFinePlacement(D);
  // Host edge u->v (edge 1) at the root, but leave rho->u (edge 0) at
  // its source: the path from the host to the source has a different
  // placement — the logical-to-physical mapping would be unstable.
  P.setEdge(1, {D.root(), ColumnSet::empty(), false});
  P.setEdge(0, {0, ColumnSet::empty(), false});
  // rho->u is hosted at rho too (source == rho == host), so this IS
  // consistent; break it instead by hosting rho->u... at u? u does not
  // dominate... u == source, that's legal. Break via stripe columns:
  P.setNodeStripes(D.root(), 8);
  P.setEdge(0, {D.root(), Spec.cols({"src"}), false});
  // Now edge 1 is hosted at rho with no stripe cols, but the path edge
  // rho->u uses stripe columns {src}: different placements.
  ValidationResult R = P.validate();
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("path"), std::string::npos);
}

TEST(Placement, StripeColumnsMustBeVisible) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Stick);
  LockPlacement P = makeFinePlacement(D);
  P.setNodeStripes(D.root(), 8);
  // Edge rho->u binds {src}; striping it by {weight} is not computable
  // from an edge-instance tuple.
  P.setEdge(0, {D.root(), Spec.cols({"weight"}), false});
  ValidationResult R = P.validate();
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("stripe"), std::string::npos);
}

TEST(Placement, ConstantStripeActsAsSerializer) {
  // StripeCols = ∅ with k stripes pins every edge instance to one
  // stripe: the container is serialized even though the node is striped
  // (the Split 2 "coarse right half" trick).
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Split);
  LockPlacement P = makeFinePlacement(D);
  P.setNodeStripes(D.root(), 1024);
  P.setEdge(0, {D.root(), Spec.cols({"src"}), false});
  P.setEdge(1, {D.root(), ColumnSet::empty(), false});
  EXPECT_TRUE(P.allowsConcurrentAccess(0));
  EXPECT_FALSE(P.allowsConcurrentAccess(1));
}

TEST(Placement, SummaryString) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Stick);
  LockPlacement P = makeStripedPlacement(D, 16);
  std::string S = P.str();
  EXPECT_NE(S.find("stripes"), std::string::npos);
  EXPECT_NE(S.find("rho"), std::string::npos);
}

} // namespace
