//===- tests/baseline_workload_test.cpp - Baseline & harness tests ------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "baseline/HandcodedGraph.h"
#include "rel/RefRelation.h"
#include "decomp/Shapes.h"
#include "workload/Harness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

using namespace crs;

namespace {

// ----------------------------------------------------- HandcodedGraph

TEST(HandcodedGraph, PutIfAbsentSemantics) {
  HandcodedGraph G;
  EXPECT_TRUE(G.insertEdge(1, 2, 42));
  EXPECT_FALSE(G.insertEdge(1, 2, 101)); // FD preserved
  int64_t W = -1;
  ASSERT_TRUE(G.lookupWeight(1, 2, W));
  EXPECT_EQ(W, 42);
  EXPECT_EQ(G.size(), 1u);
  EXPECT_TRUE(G.removeEdge(1, 2));
  EXPECT_FALSE(G.removeEdge(1, 2));
  EXPECT_EQ(G.size(), 0u);
}

TEST(HandcodedGraph, SuccessorsAndPredecessorsSorted) {
  HandcodedGraph G;
  G.insertEdge(1, 3, 30);
  G.insertEdge(1, 2, 20);
  G.insertEdge(4, 2, 40);
  auto Succ = G.successors(1);
  ASSERT_EQ(Succ.size(), 2u);
  EXPECT_EQ(Succ[0].first, 2); // TreeMap scan: sorted by dst
  EXPECT_EQ(Succ[1].first, 3);
  auto Pred = G.predecessors(2);
  ASSERT_EQ(Pred.size(), 2u);
  EXPECT_EQ(Pred[0].first, 1);
  EXPECT_EQ(Pred[1].first, 4);
  EXPECT_TRUE(G.successors(9).empty());
}

TEST(HandcodedGraph, MatchesReferenceSemantics) {
  HandcodedGraph G;
  RelationSpec Spec = makeGraphSpec();
  RefRelation Ref(Spec);
  Xoshiro256 Rng(21);
  for (int I = 0; I < 2000; ++I) {
    int64_t S = static_cast<int64_t>(Rng.nextBounded(8));
    int64_t D = static_cast<int64_t>(Rng.nextBounded(8));
    int64_t W = static_cast<int64_t>(Rng.nextBounded(50));
    Tuple Key = Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                           {Spec.col("dst"), Value::ofInt(D)}});
    switch (Rng.nextBounded(3)) {
    case 0:
      ASSERT_EQ(G.insertEdge(S, D, W),
                Ref.insert(Key, Tuple::of({{Spec.col("weight"),
                                            Value::ofInt(W)}})));
      break;
    case 1:
      ASSERT_EQ(G.removeEdge(S, D), Ref.remove(Key) > 0);
      break;
    default: {
      auto Mine = G.successors(S);
      auto Want = Ref.query(Tuple::of({{Spec.col("src"), Value::ofInt(S)}}),
                            Spec.cols({"dst", "weight"}));
      ASSERT_EQ(Mine.size(), Want.size());
      break;
    }
    }
    ASSERT_EQ(G.size(), Ref.size());
  }
}

TEST(HandcodedGraph, ConcurrentInsertRemoveKeepsBothIndexes) {
  HandcodedGraph G;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&G, T] {
      for (int64_t I = 0; I < 300; ++I) {
        G.insertEdge(T, I, I);
        if (I % 2)
          G.removeEdge(T, I);
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(G.size(), 4u * 150u);
  // Forward and reverse indexes agree.
  size_t FwdTotal = 0, RevTotal = 0;
  for (int64_t N = 0; N < 4; ++N)
    FwdTotal += G.successors(N).size();
  for (int64_t N = 0; N < 300; ++N)
    RevTotal += G.predecessors(N).size();
  EXPECT_EQ(FwdTotal, G.size());
  EXPECT_EQ(RevTotal, G.size());
}

// ------------------------------------------------------------ workload

TEST(OpMix, LabelsMatchFigure5) {
  EXPECT_EQ(Fig5Workloads[0].str(), "70-0-20-10");
  EXPECT_EQ(Fig5Workloads[1].str(), "35-35-20-10");
  EXPECT_EQ(Fig5Workloads[2].str(), "0-0-50-50");
  EXPECT_EQ(Fig5Workloads[3].str(), "45-45-9-1");
}

TEST(Workload, RandomOpsRespectKeySpace) {
  HandcodedGraph G;
  HandcodedGraphTarget Target(G);
  KeySpace Keys{16, 100};
  Xoshiro256 Rng(5);
  for (int I = 0; I < 2000; ++I)
    runRandomOp(Target, Fig5Workloads[2], Keys, Rng);
  // Only inserts/removes in 0-0-50-50; all keys within range.
  auto AllWithin = [&] {
    for (int64_t S = 0; S < Keys.NumNodes; ++S)
      for (auto &[D, W] : G.successors(S))
        if (D < 0 || D >= Keys.NumNodes || W < 0 || W >= 100)
          return false;
    return true;
  };
  EXPECT_TRUE(AllWithin());
  EXPECT_GT(G.size(), 0u);
}

TEST(Harness, MeasuresAndResets) {
  HarnessParams Params;
  Params.NumThreads = 2;
  Params.OpsPerThread = 3000;
  Params.Repeats = 3;
  Params.DiscardRuns = 1;
  KeySpace Keys{32, 1000};
  int Built = 0;
  ThroughputResult R = runThroughput(
      [&]() -> std::unique_ptr<GraphTarget> {
        ++Built;
        struct Owning : HandcodedGraphTarget {
          std::unique_ptr<HandcodedGraph> G;
          explicit Owning(std::unique_ptr<HandcodedGraph> Gr)
              : HandcodedGraphTarget(*Gr), G(std::move(Gr)) {}
        };
        return std::make_unique<Owning>(std::make_unique<HandcodedGraph>());
      },
      Fig5Workloads[0], Keys, Params);
  EXPECT_EQ(Built, 3);
  EXPECT_GT(R.OpsPerSec, 0.0);
  EXPECT_EQ(R.TotalOps, 3u * 2u * 3000u);
  EXPECT_GT(R.FinalSize, 0u);
}

} // namespace
