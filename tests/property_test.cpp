//===- tests/property_test.cpp - Randomized synthesis-space fuzzing -----------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Property-based coverage of the synthesis space: generate random
/// relational specifications, random *adequate* decompositions over them
/// (trees with occasional DAG sharing, random container kinds, random
/// multi-column edges), and random legal lock placements; then check
///
///  * the generated decomposition passes the adequacy checker (the
///    generator and checker agree on §4.1);
///  * every compiled plan passes the static validity checker;
///  * randomized operation sequences behave exactly like the §2
///    reference semantics (differential testing vs RefRelation);
///  * a short concurrent shake leaves the representation consistent.
///
//===----------------------------------------------------------------------===//

#include "lockplace/PlacementSchemes.h"
#include "plan/PlanValidity.h"
#include "rel/RefRelation.h"
#include "runtime/ConcurrentRelation.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

using namespace crs;

namespace {

/// Picks a random nonempty subset of \p Pool.
ColumnSet randomSubset(Xoshiro256 &Rng, ColumnSet Pool) {
  std::vector<ColumnId> Members = Pool.members();
  ColumnSet Out;
  while (Out.isEmpty())
    for (ColumnId C : Members)
      if (Rng.nextBounded(2))
        Out |= ColumnSet::of(C);
  return Out;
}

/// Generates a random specification with 3-5 columns and a random key.
std::shared_ptr<RelationSpec> randomSpec(Xoshiro256 &Rng) {
  unsigned NumCols = 3 + static_cast<unsigned>(Rng.nextBounded(3));
  std::vector<std::string> Names;
  for (unsigned I = 0; I < NumCols; ++I)
    Names.push_back("c" + std::to_string(I));
  // Key = random proper nonempty subset; FD key -> rest.
  std::vector<std::string> KeyNames, RestNames;
  do {
    KeyNames.clear();
    RestNames.clear();
    for (unsigned I = 0; I < NumCols; ++I)
      (Rng.nextBounded(2) ? KeyNames : RestNames).push_back(Names[I]);
  } while (KeyNames.empty() || RestNames.empty());
  return std::make_shared<RelationSpec>(
      Names, std::vector<std::pair<std::vector<std::string>,
                                   std::vector<std::string>>>{
                 {KeyNames, RestNames}});
}

/// Recursively builds a random adequate decomposition. Nodes are
/// memoized by type (A ▷ B) and occasionally reused, producing DAG
/// sharing like the paper's diamond.
class RandomDecompBuilder {
public:
  RandomDecompBuilder(Decomposition &D, const RelationSpec &Spec,
                      Xoshiro256 &Rng)
      : D(D), Spec(Spec), Rng(Rng) {}

  NodeId build(ColumnSet A, ColumnSet B) {
    auto CacheKey = std::make_pair(A.bits(), B.bits());
    auto It = Cache.find(CacheKey);
    if (It != Cache.end() && Rng.nextBounded(2))
      return It->second; // share an existing node (diamond-style)
    NodeId N = D.addNode("n" + std::to_string(D.numNodes()), A, B);
    Cache[CacheKey] = N;
    if (B.isEmpty())
      return N;

    unsigned Fanout =
        (D.numNodes() < 24 && B.size() > 1 && Rng.nextBounded(3) == 0) ? 2
                                                                       : 1;
    for (unsigned I = 0; I < Fanout; ++I) {
      ColumnSet Cols = D.numNodes() >= 24 ? B : randomSubset(Rng, B);
      NodeId Child = build(A | Cols, B - Cols);
      D.addEdge(N, Child, Cols, pickKind(A, Cols));
    }
    return N;
  }

private:
  ContainerKind pickKind(ColumnSet A, ColumnSet Cols) {
    if (Spec.determines(A, Cols) && Rng.nextBounded(2))
      return ContainerKind::SingletonCell;
    static const ContainerKind Menu[] = {
        ContainerKind::HashMap, ContainerKind::TreeMap,
        ContainerKind::ConcurrentHashMap,
        ContainerKind::ConcurrentSkipListMap, ContainerKind::CowArrayMap};
    return Menu[Rng.nextBounded(5)];
  }

  Decomposition &D;
  const RelationSpec &Spec;
  Xoshiro256 &Rng;
  std::map<std::pair<uint64_t, uint64_t>, NodeId> Cache;
};

/// Picks a random placement scheme and fixes up container kinds so the
/// combination is legal (edges left concurrent by the placement get a
/// concurrency-safe container).
std::shared_ptr<LockPlacement> randomPlacement(Decomposition &D,
                                               Xoshiro256 &Rng) {
  unsigned Scheme = static_cast<unsigned>(Rng.nextBounded(4));
  uint32_t Stripes = Rng.nextBounded(2) ? 4 : 16;
  // Speculation and striping need concurrency-safe containers on the
  // affected (root-sourced) edges.
  if (Scheme >= 2)
    for (const auto &E : D.edges())
      if (E.Src == D.root() && E.Kind != ContainerKind::SingletonCell &&
          !containerTraits(E.Kind).concurrencySafe())
        D.setEdgeKind(E.Id, Rng.nextBounded(2)
                                ? ContainerKind::ConcurrentHashMap
                                : ContainerKind::ConcurrentSkipListMap);
  std::shared_ptr<LockPlacement> P;
  switch (Scheme) {
  case 0:
    P = std::make_shared<LockPlacement>(makeCoarsePlacement(D));
    break;
  case 1:
    P = std::make_shared<LockPlacement>(makeFinePlacement(D));
    break;
  case 2:
    P = std::make_shared<LockPlacement>(makeStripedPlacement(D, Stripes));
    break;
  default:
    P = std::make_shared<LockPlacement>(
        makeSpeculativePlacement(D, Stripes));
    break;
  }
  // Root-sourced singleton edges under a striped scheme would be left
  // concurrent; pin them to a constant stripe.
  for (const auto &E : D.edges())
    if (P->allowsConcurrentAccess(E.Id) &&
        !containerTraits(E.Kind).concurrencySafe())
      P->setEdge(E.Id, {E.Src, ColumnSet::empty(), false});
  return P;
}

/// Random value for a column: a small int or (sometimes) a string.
Value randomValue(Xoshiro256 &Rng) {
  if (Rng.nextBounded(4) == 0) {
    static const char *Strings[] = {"red", "green", "blue", "teal"};
    return Value::ofString(Strings[Rng.nextBounded(4)]);
  }
  return Value::ofInt(static_cast<int64_t>(Rng.nextBounded(4)));
}

Tuple randomTupleFor(Xoshiro256 &Rng, ColumnSet Cols) {
  Tuple T;
  Cols.forEach([&](ColumnId C) { T.set(C, randomValue(Rng)); });
  return T;
}

class SynthesisFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SynthesisFuzz, RandomRepresentationMatchesReference) {
  Xoshiro256 Rng(424242 + GetParam() * 7919);
  auto Spec = randomSpec(Rng);
  auto Decomp = std::make_shared<Decomposition>(*Spec);
  RandomDecompBuilder Builder(*Decomp, *Spec, Rng);
  Builder.build(ColumnSet::empty(), Spec->allColumns());

  // The generator must always produce adequate decompositions.
  ValidationResult Adequate = Decomp->validate();
  ASSERT_TRUE(Adequate.ok()) << Decomp->str() << "\n" << Adequate.str();

  auto Placement = randomPlacement(*Decomp, Rng);
  ASSERT_TRUE(Placement->validate().ok())
      << Decomp->str() << "\n" << Placement->str() << "\n"
      << Placement->validate().str();
  ASSERT_TRUE(Placement->validateContainerSafety().ok())
      << Decomp->str() << "\n" << Placement->str() << "\n"
      << Placement->validateContainerSafety().str();

  // Every query plan the planner can produce is statically valid.
  QueryPlanner Planner(*Decomp, *Placement);
  ColumnSet All = Spec->allColumns();
  All.forEach([&](ColumnId C) {
    for (const Plan &P :
         Planner.enumerateQueryPlans(ColumnSet::of(C), All - ColumnSet::of(C)))
      ASSERT_TRUE(checkPlanValidity(P).ok())
          << Decomp->str() << "\n" << Placement->str() << "\n" << P.str();
  });

  // Differential test against the §2 reference semantics.
  ConcurrentRelation R({Spec, Decomp, Placement, "fuzz"});
  RefRelation Ref(*Spec);
  ColumnSet Key = Spec->minimalKeys().front();
  ColumnSet Rest = All - Key;

  for (int Step = 0; Step < 250; ++Step) {
    switch (Rng.nextBounded(4)) {
    case 0: {
      Tuple S = randomTupleFor(Rng, Key);
      Tuple T = randomTupleFor(Rng, Rest);
      ASSERT_EQ(R.insert(S, T), Ref.insert(S, T)) << "step " << Step;
      break;
    }
    case 1: {
      Tuple S = randomTupleFor(Rng, Key);
      ASSERT_EQ(R.remove(S), Ref.remove(S)) << "step " << Step;
      break;
    }
    default: {
      // Random query signature: any nonempty dom(s), any output set.
      ColumnSet DomS = randomSubset(Rng, All);
      ColumnSet C = randomSubset(Rng, All);
      Tuple S = randomTupleFor(Rng, DomS);
      ASSERT_EQ(R.query(S, C), Ref.query(S, C))
          << "step " << Step << " dom(s)=" << Spec->catalog().str(DomS)
          << " C=" << Spec->catalog().str(C) << "\n"
          << Decomp->str() << "\n" << Placement->str();
      break;
    }
    }
    ASSERT_EQ(R.size(), Ref.size()) << "step " << Step;
  }
  EXPECT_EQ(R.scanAll(), Ref.allTuples());
  EXPECT_TRUE(R.verifyConsistency().ok())
      << Decomp->str() << "\n" << R.verifyConsistency().str();
}

TEST_P(SynthesisFuzz, RandomRepresentationSurvivesConcurrentShake) {
  Xoshiro256 Rng(917 + GetParam() * 104729);
  auto Spec = randomSpec(Rng);
  auto Decomp = std::make_shared<Decomposition>(*Spec);
  RandomDecompBuilder Builder(*Decomp, *Spec, Rng);
  Builder.build(ColumnSet::empty(), Spec->allColumns());
  ASSERT_TRUE(Decomp->validate().ok());
  auto Placement = randomPlacement(*Decomp, Rng);
  ASSERT_TRUE(Placement->validate().ok());
  ASSERT_TRUE(Placement->validateContainerSafety().ok());

  ConcurrentRelation R({Spec, Decomp, Placement, "fuzz-conc"});
  ColumnSet All = Spec->allColumns();
  ColumnSet Key = Spec->minimalKeys().front();
  ColumnSet Rest = All - Key;

  std::vector<std::thread> Threads;
  for (int T = 0; T < 3; ++T)
    Threads.emplace_back([&, T] {
      Xoshiro256 TRng(GetParam() * 31 + T);
      for (int I = 0; I < 400; ++I) {
        switch (TRng.nextBounded(4)) {
        case 0:
          R.insert(randomTupleFor(TRng, Key), randomTupleFor(TRng, Rest));
          break;
        case 1:
          R.remove(randomTupleFor(TRng, Key));
          break;
        default: {
          ColumnSet DomS = randomSubset(TRng, All);
          R.query(randomTupleFor(TRng, DomS), All - DomS);
          break;
        }
        }
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_TRUE(R.verifyConsistency().ok())
      << Decomp->str() << "\n" << Placement->str() << "\n"
      << R.verifyConsistency().str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisFuzz, ::testing::Range(0, 24));

} // namespace
