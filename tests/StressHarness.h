//===- tests/StressHarness.h - Reusable stress/oracle harness ---*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent stress harness behind the mutation-log oracle tests,
/// extracted from migration_test so every suite that hammers a target
/// under a mid-run action (a migration, a shard rollout, a replan) can
/// reuse it: k worker threads run a random operation mix with disjoint
/// per-thread src ranges, logging every mutation outcome
/// (runRandomOpLogged); a caller-supplied action fires on the
/// controlling thread once the workers have built state; and the logs
/// replay into the sequentially expected final relation
/// (replayMutationLogs) — any lost or duplicated effect surfaces as an
/// outcome mismatch or a final-state diff.
///
/// Determinism knobs (environment, so the CI stress lane can turn them
/// without recompiling):
///
///  * CRS_STRESS_SEED  — overrides the test's default seed. Every
///    failure message should carry StressReport::hint() so the exact
///    failing run can be replayed.
///  * CRS_STRESS_OPS_MULT — multiplies the before/after op targets
///    (the nightly stress lane runs elevated iteration counts).
///  * CRS_STRESS_THREADS  — overrides the worker thread count.
///
/// Note the run is deterministic per *thread log*, not per
/// interleaving: a seed pins each worker's operation sequence, which is
/// what the oracle needs, while the schedule stays free to vary — rerun
/// a seed several times to chase a racy failure.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_TESTS_STRESSHARNESS_H
#define CRS_TESTS_STRESSHARNESS_H

#include "txn/Transaction.h"
#include "workload/GraphWorkload.h"

#include <atomic>
#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace crs {
namespace stress {

inline uint64_t envU64(const char *Name, uint64_t Default) {
  const char *V = std::getenv(Name);
  return V ? std::strtoull(V, nullptr, 10) : Default;
}

/// The stress lane's iteration multiplier (CRS_STRESS_OPS_MULT, ≥ 1).
inline uint64_t opsMultiplier() {
  uint64_t M = envU64("CRS_STRESS_OPS_MULT", 1);
  return M ? M : 1;
}

/// The seed a run will actually use: CRS_STRESS_SEED wins over the
/// test's default, so a printed failing seed reruns deterministically.
inline uint64_t resolveSeed(uint64_t Default) {
  return envU64("CRS_STRESS_SEED", Default);
}

/// Parameters of one stress run (op targets are scaled by
/// opsMultiplier(); threads overridden by CRS_STRESS_THREADS).
struct StressOptions {
  unsigned Threads = 4;
  OpMix Mix{30, 20, 30, 20};
  /// Srcs per worker: each worker t draws src from
  /// [t*SrcPerThread, (t+1)*SrcPerThread), so the per-thread logs own
  /// disjoint edge keys and replay exactly. Small = contended.
  int64_t SrcPerThread = 16;
  int64_t WeightRange = 1 << 20;
  uint64_t Seed = 20120611; ///< default; CRS_STRESS_SEED overrides
  uint64_t OpsBeforeAction = 4000; ///< total ops before MidAction fires
  uint64_t OpsAfterAction = 4000;  ///< total ops after it returns
};

/// What a stress run did and what the oracle expects of the survivor.
struct StressReport {
  uint64_t Seed = 0;     ///< the seed actually used — print on failure
  uint64_t TotalOps = 0; ///< operations executed across all workers
  std::vector<MutationLog> Logs; ///< one per worker, disjoint src ranges
  /// The replayed oracle: the exact (src, dst) → weight edge set the
  /// target must now hold.
  std::map<std::pair<int64_t, int64_t>, int64_t> Expected;
  /// Outcome mismatches found by the replay (lost/duplicated effects).
  std::vector<std::string> Errors;

  /// Attach to every assertion message so a failure reruns exactly.
  std::string hint() const {
    return "rerun deterministically with CRS_STRESS_SEED=" +
           std::to_string(Seed);
  }
};

/// Runs the mixed workload against \p Target from Opts.Threads workers;
/// once Opts.OpsBeforeAction total ops have executed, \p MidAction runs
/// on the calling thread under live traffic (it may migrate, replan,
/// sample — anything legal under traffic); after Opts.OpsAfterAction
/// more ops the workers stop, drain, and the logs replay into the
/// oracle. The target must have immediate effects (not
/// BatchedRelationTarget — logged outcomes are checked).
inline StressReport
runStressWithOracle(GraphTarget &Target, const StressOptions &Opts,
                    const std::function<void()> &MidAction = nullptr) {
  StressReport Rep;
  Rep.Seed = resolveSeed(Opts.Seed);
  const uint64_t Mult = opsMultiplier();
  const uint64_t Before = Opts.OpsBeforeAction * Mult;
  const uint64_t After = Opts.OpsAfterAction * Mult;
  const unsigned Threads = static_cast<unsigned>(
      envU64("CRS_STRESS_THREADS", Opts.Threads));

  Rep.Logs.assign(Threads, {});
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Ops{0};
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      KeySpace Keys{Opts.SrcPerThread, Opts.WeightRange,
                    static_cast<int64_t>(T) * Opts.SrcPerThread};
      Xoshiro256 Rng(Rep.Seed * 0x9e3779b9 + 7919 * T + T);
      while (!Stop.load(std::memory_order_acquire)) {
        runRandomOpLogged(Target, Opts.Mix, Keys, Rng, &Rep.Logs[T]);
        Ops.fetch_add(1, std::memory_order_relaxed);
      }
      Target.threadFinish();
    });

  while (Ops.load(std::memory_order_relaxed) < Before)
    std::this_thread::yield();
  if (MidAction)
    MidAction();
  const uint64_t Mark = Ops.load(std::memory_order_relaxed);
  while (Ops.load(std::memory_order_relaxed) < Mark + After)
    std::this_thread::yield();
  Stop.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();

  Rep.TotalOps = Ops.load(std::memory_order_relaxed);
  Rep.Expected = replayMutationLogs(Rep.Logs, &Rep.Errors);
  return Rep;
}

/// Parameters of one *transactional* stress run: each worker iteration
/// is a whole transaction scope of 1..MaxOpsPerTxn random operations
/// (drawn from Mix over the worker's disjoint src range) that commits,
/// is force-aborted (ForcedAbortPct), or dies on a conflict. Only
/// committed scopes reach the log — the oracle replays committed-txn
/// logs exclusively, so an abort that leaked any effect (or a commit
/// that lost one) surfaces as an outcome mismatch or a final-state
/// diff, exactly like the single-op harness.
struct TxnStressOptions : StressOptions {
  unsigned MaxOpsPerTxn = 3;
  unsigned ForcedAbortPct = 15; ///< share of built scopes aborted by hand
};

/// Extra accounting for a transactional run.
struct TxnStressReport : StressReport {
  uint64_t Committed = 0;
  uint64_t ForcedAborts = 0;
  uint64_t ConflictAborts = 0;
};

/// The transactional analogue of runStressWithOracle, over either a
/// ConcurrentRelation or a ShardedRelation (the scope type follows via
/// TxnHandleFor). Worker iterations are counted per *scope*; MidAction
/// fires on the controlling thread after OpsBeforeAction scopes.
template <typename RelT>
TxnStressReport
runTxnStressWithOracle(RelT &Rel, const TxnStressOptions &Opts,
                       const std::function<void()> &MidAction = nullptr) {
  using TxnT = typename TxnHandleFor<RelT>::type;
  TxnStressReport Rep;
  Rep.Seed = resolveSeed(Opts.Seed);
  const uint64_t Mult = opsMultiplier();
  const uint64_t Before = Opts.OpsBeforeAction * Mult;
  const uint64_t After = Opts.OpsAfterAction * Mult;
  const unsigned Threads = static_cast<unsigned>(
      envU64("CRS_STRESS_THREADS", Opts.Threads));

  const RelationSpec &Spec = Rel.spec();
  ColumnId SrcCol = Spec.col("src"), DstCol = Spec.col("dst");
  ColumnSet Key = ColumnSet::of(SrcCol) | ColumnSet::of(DstCol);
  // One handle set shared by every worker (handles are thread-safe;
  // transactional ops bind inline, not through per-thread frames).
  auto Succ = Rel.prepareQuery(ColumnSet::of(SrcCol),
                               Spec.cols({"dst", "weight"}));
  auto Pred = Rel.prepareQuery(ColumnSet::of(DstCol),
                               Spec.cols({"src", "weight"}));
  auto Ins = Rel.prepareInsert(Key);
  auto Rem = Rel.prepareRemove(Key);

  Rep.Logs.assign(Threads, {});
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Scopes{0};
  std::atomic<uint64_t> Committed{0}, Forced{0}, Conflicts{0};
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      KeySpace Keys{Opts.SrcPerThread, Opts.WeightRange,
                    static_cast<int64_t>(T) * Opts.SrcPerThread};
      Xoshiro256 Rng(Rep.Seed * 0x9e3779b9 + 7919 * T + T);
      const unsigned Total = Opts.Mix.FindSuccessors +
                             Opts.Mix.FindPredecessors +
                             Opts.Mix.InsertEdge + Opts.Mix.RemoveEdge;
      while (!Stop.load(std::memory_order_acquire)) {
        // Draw the whole scope first; the tentative log entries join
        // the worker's log only if the scope commits.
        struct Planned {
          unsigned Kind; // 0 succ / 1 pred / 2 insert / 3 remove
          int64_t Src, Dst, W;
        };
        unsigned N = 1 + static_cast<unsigned>(Rng.nextBounded(
                             Opts.MaxOpsPerTxn));
        std::vector<Planned> Plan(N);
        for (Planned &Op : Plan) {
          uint64_t Draw = Rng.nextBounded(Total);
          Op.Src = Keys.SrcBase +
                   static_cast<int64_t>(Rng.nextBounded(
                       static_cast<uint64_t>(Keys.NumNodes)));
          Op.Dst = static_cast<int64_t>(
              Rng.nextBounded(static_cast<uint64_t>(Keys.NumNodes)));
          Op.W = static_cast<int64_t>(
              Rng.nextBounded(static_cast<uint64_t>(Keys.WeightRange)));
          Op.Kind = Draw < Opts.Mix.FindSuccessors ? 0
                    : Draw < Opts.Mix.FindSuccessors +
                                 Opts.Mix.FindPredecessors
                        ? 1
                    : Draw < Total - Opts.Mix.RemoveEdge ? 2
                                                         : 3;
        }
        bool ForceAbort = Rng.nextBounded(100) < Opts.ForcedAbortPct;

        MutationLog Scratch;
        bool Died = false;
        {
          TxnT Txn(Rel);
          for (const Planned &Op : Plan) {
            bool Ok = true;
            switch (Op.Kind) {
            case 0:
              Ok = Txn.query(Succ, {Value::ofInt(Op.Src)});
              break;
            case 1:
              Ok = Txn.query(Pred, {Value::ofInt(Op.Dst)});
              break;
            case 2: {
              bool Won = false;
              Ok = Txn.insert(Ins,
                              {Value::ofInt(Op.Src), Value::ofInt(Op.Dst),
                               Value::ofInt(Op.W)},
                              &Won);
              if (Ok)
                Scratch.push_back({true, Op.Src, Op.Dst, Op.W, Won ? 1 : 0});
              break;
            }
            default: {
              unsigned Removed = 0;
              Ok = Txn.remove(
                  Rem, {Value::ofInt(Op.Src), Value::ofInt(Op.Dst)},
                  &Removed);
              if (Ok)
                Scratch.push_back({false, Op.Src, Op.Dst, 0,
                                   static_cast<int64_t>(Removed)});
              break;
            }
            }
            if (!Ok) {
              Died = true; // rolled back in full; nothing logged
              break;
            }
          }
          if (Died) {
            Conflicts.fetch_add(1, std::memory_order_relaxed);
          } else if (ForceAbort) {
            Txn.abort(); // exercises the undo path under contention
            Forced.fetch_add(1, std::memory_order_relaxed);
          } else {
            bool Ok = Txn.commit();
            assert(Ok && "open scope must commit");
            (void)Ok;
            Committed.fetch_add(1, std::memory_order_relaxed);
            Rep.Logs[T].insert(Rep.Logs[T].end(), Scratch.begin(),
                               Scratch.end());
          }
        }
        Scopes.fetch_add(1, std::memory_order_relaxed);
      }
    });

  while (Scopes.load(std::memory_order_relaxed) < Before)
    std::this_thread::yield();
  if (MidAction)
    MidAction();
  const uint64_t Mark = Scopes.load(std::memory_order_relaxed);
  while (Scopes.load(std::memory_order_relaxed) < Mark + After)
    std::this_thread::yield();
  Stop.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();

  Rep.TotalOps = Scopes.load(std::memory_order_relaxed);
  Rep.Committed = Committed.load(std::memory_order_relaxed);
  Rep.ForcedAborts = Forced.load(std::memory_order_relaxed);
  Rep.ConflictAborts = Conflicts.load(std::memory_order_relaxed);
  Rep.Expected = replayMutationLogs(Rep.Logs, &Rep.Errors);
  return Rep;
}

/// Parameters of one snapshot-consistency stress run: writer threads
/// run bank-style balanced transfers (debit one account, credit
/// another, both under queryForUpdate + rewrite) so the total balance
/// is invariant, while checker threads repeatedly open *read-only*
/// scopes that sum every account through snapshot query(). Snapshot
/// isolation makes the invariant exact per scope: all the reads share
/// one snapshot, so a checker that ever sees a debit without its
/// credit (a torn transfer) proves a broken snapshot. The checkers
/// take no locks and never die, so they run at full speed against the
/// writers — the TSan/ASan stress lane turns the iteration knob up.
struct SnapshotStressOptions {
  unsigned Writers = 3;
  unsigned Checkers = 2;
  int64_t NumAccounts = 64;
  int64_t InitialBalance = 1000;
  uint64_t Seed = 20120612; ///< default; CRS_STRESS_SEED overrides
  uint64_t Transfers = 2000; ///< total committed transfers (× mult)
};

/// What a snapshot-consistency run did.
struct SnapshotStressReport {
  uint64_t Seed = 0;
  uint64_t Transfers = 0; ///< committed writer scopes
  uint64_t Checks = 0;    ///< completed checker scopes
  /// Sum-conservation violations (empty means every snapshot was
  /// consistent) — each entry carries the bad sum and the scope's
  /// snapshot sequence.
  std::vector<std::string> Errors;
  /// Version-store health after the run, maxed/summed across shards:
  /// the longest primary-bucket chain list (a sizing/regression bound —
  /// the store hashes identities uniformly, so a long list means a
  /// mis-sized directory) and installRemove no-ops (idempotent-replay
  /// tolerance that must never fire outside recovery).
  size_t MaxBucketChainLen = 0;
  uint64_t RemoveNoops = 0;

  std::string hint() const {
    return "rerun deterministically with CRS_STRESS_SEED=" +
           std::to_string(Seed);
  }
};

/// Applies \p F to every MvccStore behind \p Rel (one, or one per
/// shard) — the post-run health probes above.
inline void forEachMvccStore(ConcurrentRelation &Rel,
                             const std::function<void(MvccStore &)> &F) {
  F(Rel.mvccStore());
}
inline void forEachMvccStore(ShardedRelation &Rel,
                             const std::function<void(MvccStore &)> &F) {
  for (unsigned I = 0; I < Rel.numShards(); ++I)
    F(Rel.shard(I).mvccStore());
}

/// The snapshot-consistency oracle: seeds NumAccounts rows of
/// InitialBalance, hammers them with balanced transfers, and checks
/// sum conservation from concurrent read-only scopes. Works over a
/// ConcurrentRelation or a ShardedRelation (reads on the latter also
/// cross shard boundaries inside one snapshot, covering read skew
/// across shards).
template <typename RelT>
SnapshotStressReport
runSnapshotStressWithOracle(RelT &Rel, const SnapshotStressOptions &Opts,
                            const std::function<void()> &MidAction = nullptr) {
  using TxnT = typename TxnHandleFor<RelT>::type;
  SnapshotStressReport Rep;
  Rep.Seed = resolveSeed(Opts.Seed);
  const uint64_t Target = Opts.Transfers * opsMultiplier();

  const RelationSpec &Spec = Rel.spec();
  ColumnId WeightCol = Spec.col("weight");
  for (int64_t A = 0; A < Opts.NumAccounts; ++A)
    Rel.insert(Tuple::of({{Spec.col("src"), Value::ofInt(A)},
                          {Spec.col("dst"), Value::ofInt(0)}}),
               Tuple::of({{WeightCol, Value::ofInt(Opts.InitialBalance)}}));
  const int64_t TotalMoney = Opts.NumAccounts * Opts.InitialBalance;

  auto Balance =
      Rel.prepareQuery(Spec.cols({"src", "dst"}), Spec.cols({"weight"}));
  // Non-key access path: every account has dst=0, so one snapshot read
  // bound on dst alone sums the whole bank — served by the version
  // store's {dst} chain directory, racing directory linking against
  // the writers' installs.
  auto ByDst =
      Rel.prepareQuery(Spec.cols({"dst"}), Spec.cols({"src", "weight"}));
  auto Put = Rel.prepareInsert(Spec.cols({"src", "dst"}));
  auto Drop = Rel.prepareRemove(Spec.cols({"src", "dst"}));

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Committed{0}, Checks{0};
  std::mutex ErrM;
  std::vector<std::thread> Threads;
  Threads.reserve(Opts.Writers + Opts.Checkers);

  for (unsigned T = 0; T < Opts.Writers; ++T)
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(Rep.Seed * 0x9e3779b9 + 7919 * T + T);
      while (Committed.load(std::memory_order_relaxed) < Target) {
        int64_t A = static_cast<int64_t>(
            Rng.nextBounded(static_cast<uint64_t>(Opts.NumAccounts)));
        int64_t B = static_cast<int64_t>(
            Rng.nextBounded(static_cast<uint64_t>(Opts.NumAccounts - 1)));
        if (B >= A)
          ++B;
        int64_t Amount = static_cast<int64_t>(Rng.nextBounded(50)) + 1;
        bool Ok = runTransaction(Rel, [&](TxnT &Txn) {
          int64_t BalA = -1, BalB = -1;
          if (!Txn.queryForUpdate(Balance,
                                  {Value::ofInt(A), Value::ofInt(0)},
                                  [&](const Tuple &Tp) {
                                    BalA = Tp.get(WeightCol).asInt();
                                  }) ||
              !Txn.queryForUpdate(Balance,
                                  {Value::ofInt(B), Value::ofInt(0)},
                                  [&](const Tuple &Tp) {
                                    BalB = Tp.get(WeightCol).asInt();
                                  }))
            return true; // died; retried by runTransaction
          int64_t X = std::min<int64_t>(Amount, BalA);
          if (!Txn.remove(Drop, {Value::ofInt(A), Value::ofInt(0)}) ||
              !Txn.insert(Put, {Value::ofInt(A), Value::ofInt(0),
                                Value::ofInt(BalA - X)}) ||
              !Txn.remove(Drop, {Value::ofInt(B), Value::ofInt(0)}) ||
              !Txn.insert(Put, {Value::ofInt(B), Value::ofInt(0),
                                Value::ofInt(BalB + X)}))
            return true;
          return true;
        });
        if (Ok)
          Committed.fetch_add(1, std::memory_order_relaxed);
      }
    });

  for (unsigned T = 0; T < Opts.Checkers; ++T)
    Threads.emplace_back([&] {
      uint64_t Round = 0;
      while (!Stop.load(std::memory_order_acquire)) {
        TxnT Txn(Rel);
        int64_t Sum = 0;
        int64_t Rows = 0;
        bool ReadOk = true;
        if (Round++ % 2 == 0) {
          // Point reads, one per account — N snapshot lookups that must
          // still agree (they share the scope's one snapshot).
          for (int64_t A = 0; A < Opts.NumAccounts && ReadOk; ++A)
            ReadOk = Txn.query(Balance, {Value::ofInt(A), Value::ofInt(0)},
                               [&](const Tuple &Tp) {
                                 Sum += Tp.get(WeightCol).asInt();
                                 ++Rows;
                               });
        } else {
          // One non-key read over the whole bank through the {dst}
          // directory: a torn transfer or a chain missing from the
          // directory shows up as a wrong sum or row count.
          ReadOk = Txn.query(ByDst, {Value::ofInt(0)},
                             [&](const Tuple &Tp) {
                               Sum += Tp.get(WeightCol).asInt();
                               ++Rows;
                             });
        }
        uint64_t Snap = Txn.snapshotSeq();
        bool CommitOk = Txn.commit();
        if (!ReadOk || !CommitOk) {
          std::lock_guard<std::mutex> G(ErrM);
          Rep.Errors.push_back("read-only scope died (must never)");
        } else if (Sum != TotalMoney || Rows != Opts.NumAccounts) {
          std::lock_guard<std::mutex> G(ErrM);
          Rep.Errors.push_back(
              "snapshot " + std::to_string(Snap) + " saw sum " +
              std::to_string(Sum) + " over " + std::to_string(Rows) +
              " rows; expected " + std::to_string(TotalMoney) + " over " +
              std::to_string(Opts.NumAccounts));
        }
        Checks.fetch_add(1, std::memory_order_relaxed);
      }
    });

  if (MidAction) {
    while (Committed.load(std::memory_order_relaxed) < Target / 2)
      std::this_thread::yield();
    MidAction();
  }
  while (Committed.load(std::memory_order_relaxed) < Target)
    std::this_thread::yield();
  Stop.store(true, std::memory_order_release);
  for (std::thread &W : Threads)
    W.join();

  Rep.Transfers = Committed.load(std::memory_order_relaxed);
  Rep.Checks = Checks.load(std::memory_order_relaxed);
  forEachMvccStore(Rel, [&](MvccStore &Store) {
    Rep.MaxBucketChainLen =
        std::max(Rep.MaxBucketChainLen, Store.maxBucketChainLength());
    Rep.RemoveNoops += Store.removeNoops();
  });
  return Rep;
}

/// Diffs a final scanned state against the oracle's expected edge set;
/// returns human-readable differences (empty means exact agreement —
/// no phantom, lost, or rewritten edges).
inline std::vector<std::string> diffFinalState(
    const std::vector<Tuple> &Final, const RelationSpec &Spec,
    const std::map<std::pair<int64_t, int64_t>, int64_t> &Expected) {
  std::vector<std::string> Diffs;
  ColumnId Src = Spec.col("src"), Dst = Spec.col("dst"),
           Weight = Spec.col("weight");
  size_t Matched = 0;
  for (const Tuple &T : Final) {
    auto Key = std::make_pair(T.get(Src).asInt(), T.get(Dst).asInt());
    auto It = Expected.find(Key);
    if (It == Expected.end()) {
      Diffs.push_back("phantom edge (" + std::to_string(Key.first) + ", " +
                      std::to_string(Key.second) + ")");
      continue;
    }
    ++Matched;
    if (T.get(Weight).asInt() != It->second)
      Diffs.push_back("edge (" + std::to_string(Key.first) + ", " +
                      std::to_string(Key.second) + ") weight " +
                      std::to_string(T.get(Weight).asInt()) + " != expected " +
                      std::to_string(It->second));
  }
  if (Matched != Expected.size())
    Diffs.push_back("final state holds " + std::to_string(Matched) +
                    " of " + std::to_string(Expected.size()) +
                    " expected edges (rest lost)");
  return Diffs;
}

} // namespace stress
} // namespace crs

#endif // CRS_TESTS_STRESSHARNESS_H
