//===- tests/prepared_op_test.cpp - Prepared-operation API -------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// The prepared-operation surface: typed handles must agree with the
/// legacy Tuple-based API, bind positionally into per-thread frames,
/// stream results without materialization, stay valid across
/// adaptPlans() (rebinding without caller intervention, counting the
/// recompile as one plan-cache miss per signature no matter how many
/// threads share the handle), and batch-execute with per-op results.
/// The concurrent handle/adaptPlans tests double as the TSan/ASan
/// handle-lifetime coverage of the CI matrix.
///
//===----------------------------------------------------------------------===//

#include "autotune/Autotuner.h"
#include "lockplace/PlacementSchemes.h"
#include "runtime/PreparedOp.h"

#include <gtest/gtest.h>

#include <atomic>
#include <shared_mutex>
#include <thread>

using namespace crs;

namespace {

RepresentationConfig splitConfig() {
  return makeGraphRepresentation(
      {GraphShape::Split, PlacementSchemeKind::Striped, /*Stripes=*/64,
       ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap});
}

Tuple key(const RelationSpec &Spec, int64_t S, int64_t D) {
  return Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                    {Spec.col("dst"), Value::ofInt(D)}});
}

Tuple weight(const RelationSpec &Spec, int64_t W) {
  return Tuple::of({{Spec.col("weight"), Value::ofInt(W)}});
}

TEST(PreparedOp, SlotLayoutFollowsAscendingColumns) {
  ConcurrentRelation R(splitConfig());
  const RelationSpec &Spec = R.spec();

  PreparedQuery Q =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  ASSERT_EQ(Q.numSlots(), 1u);
  EXPECT_EQ(Q.slotColumn(0), Spec.col("src"));

  // Insert slots cover every column (the plan runs over s ∪ t), in
  // ascending column-id order regardless of the prepared dom(s).
  PreparedInsert I = R.prepareInsert(Spec.cols({"src", "dst"}));
  ASSERT_EQ(I.numSlots(), 3u);
  EXPECT_EQ(I.slotColumn(0), Spec.col("src"));
  EXPECT_EQ(I.slotColumn(1), Spec.col("dst"));
  EXPECT_EQ(I.slotColumn(2), Spec.col("weight"));

  PreparedRemove Rm = R.prepareRemove(Spec.cols({"src", "dst"}));
  ASSERT_EQ(Rm.numSlots(), 2u);
  EXPECT_EQ(Rm.slotColumn(0), Spec.col("src"));
  EXPECT_EQ(Rm.slotColumn(1), Spec.col("dst"));
}

TEST(PreparedOp, AgreesWithLegacyApi) {
  ConcurrentRelation R(splitConfig());
  const RelationSpec &Spec = R.spec();

  PreparedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
  for (int64_t S = 0; S < 8; ++S)
    for (int64_t D = 0; D < 8; ++D) {
      EXPECT_TRUE(Ins.bind(0, Value::ofInt(S))
                      .bind(1, Value::ofInt(D))
                      .bind(2, Value::ofInt(S * 100 + D))
                      .execute());
    }
  // Put-if-absent: a duplicate key is refused like the legacy insert.
  EXPECT_FALSE(Ins.bind(0, Value::ofInt(3))
                   .bind(1, Value::ofInt(4))
                   .bind(2, Value::ofInt(-1))
                   .execute());
  EXPECT_FALSE(R.insert(key(Spec, 3, 4), weight(Spec, -1)));
  EXPECT_EQ(R.size(), 64u);

  // Prepared execute() returns exactly the legacy query() result.
  PreparedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  for (int64_t S = 0; S < 8; ++S) {
    Succ.bind(0, Value::ofInt(S));
    EXPECT_EQ(Succ.execute(),
              R.query(Tuple::of({{Spec.col("src"), Value::ofInt(S)}}),
                      Spec.cols({"dst", "weight"})));
  }

  // Streaming: forEach visits full state tuples whose projections are
  // the materialized result set.
  Succ.bind(0, Value::ofInt(5));
  std::vector<Tuple> Streamed;
  uint32_t N = Succ.forEach([&](const Tuple &T) {
    EXPECT_TRUE(T.domain().containsAll(Spec.cols({"src", "dst", "weight"})));
    EXPECT_EQ(T.get(Spec.col("src")).asInt(), 5);
    Streamed.push_back(T.project(Spec.cols({"dst", "weight"})));
  });
  EXPECT_EQ(N, 8u);
  EXPECT_EQ(Succ.count(), 8u);
  std::sort(Streamed.begin(), Streamed.end(), TupleLess());
  EXPECT_EQ(Streamed, Succ.execute());

  // Prepared remove agrees with the legacy remove.
  PreparedRemove Rm = R.prepareRemove(Spec.cols({"src", "dst"}));
  EXPECT_EQ(Rm.bind(0, Value::ofInt(3)).bind(1, Value::ofInt(4)).execute(),
            1u);
  EXPECT_EQ(Rm.execute(), 0u); // sticky bindings: same key, already gone
  EXPECT_EQ(R.remove(key(Spec, 3, 5)), 1u);
  EXPECT_EQ(R.size(), 62u);
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST(PreparedOp, BindingsArePerThread) {
  ConcurrentRelation R(splitConfig());
  const RelationSpec &Spec = R.spec();
  PreparedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));

  // Two threads interleave binds and executes on one shared handle;
  // each thread's frame is private, so both series land intact.
  constexpr int64_t PerThread = 200;
  auto Work = [&](int64_t SrcBase) {
    for (int64_t I = 0; I < PerThread; ++I) {
      Ins.bind(0, Value::ofInt(SrcBase));
      Ins.bind(1, Value::ofInt(I));
      Ins.bind(2, Value::ofInt(SrcBase + I));
      EXPECT_TRUE(Ins.execute());
    }
  };
  std::thread A(Work, 1000), B(Work, 2000);
  A.join();
  B.join();
  EXPECT_EQ(R.size(), 2 * PerThread);
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST(PreparedOp, StaleHandleRebindsAfterAdaptPlans) {
  ConcurrentRelation R(splitConfig());
  const RelationSpec &Spec = R.spec();
  PreparedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
  PreparedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));

  for (int64_t I = 0; I < 16; ++I)
    Ins.bind(0, Value::ofInt(I % 4))
        .bind(1, Value::ofInt(I))
        .bind(2, Value::ofInt(I))
        .execute();
  Succ.bind(0, Value::ofInt(1));
  auto Before = Succ.execute();
  EXPECT_EQ(Succ.boundEpoch(), R.planEpoch());

  // adaptPlans retires every cached plan; the next execution must
  // transparently rebind to a plan stamped with the new epoch and
  // return the same result — no caller intervention.
  R.adaptPlans();
  EXPECT_NE(Succ.boundEpoch(), R.planEpoch());
  EXPECT_EQ(Succ.execute(), Before);
  EXPECT_EQ(Succ.boundEpoch(), R.planEpoch());

  // The mutation handles rebind the same way.
  EXPECT_TRUE(Ins.bind(0, Value::ofInt(9))
                  .bind(1, Value::ofInt(9))
                  .bind(2, Value::ofInt(9))
                  .execute());
  EXPECT_EQ(Ins.boundEpoch(), R.planEpoch());
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST(PreparedOp, HandlesSurviveLiveMigrationUnderConcurrentTraffic) {
  // Shared handles executing from several threads while the relation
  // hot-swaps its decomposition underneath them: every execution lands
  // on a representation-consistent plan (the operation gate makes each
  // flip atomic w.r.t. whole operations), and both rebinds — onto the
  // mirroring plans, then onto the new decomposition's plans — are
  // transparent.
  ConcurrentRelation R(splitConfig());
  const RelationSpec &Spec = R.spec();
  PreparedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
  PreparedRemove Rem = R.prepareRemove(Spec.cols({"src", "dst"}));
  PreparedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));

  constexpr unsigned NumThreads = 4;
  constexpr int64_t PerThread = 64; // disjoint src ranges per thread
  std::atomic<bool> Go{false}, Stop{false};
  std::atomic<uint64_t> Ops{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      uint64_t I = 0;
      while (!Stop.load(std::memory_order_acquire)) {
        int64_t S = static_cast<int64_t>(T) * PerThread +
                    static_cast<int64_t>(I % PerThread);
        Ins.bind(0, Value::ofInt(S))
            .bind(1, Value::ofInt(static_cast<int64_t>(I % 7)))
            .bind(2, Value::ofInt(static_cast<int64_t>(I)))
            .execute();
        Succ.bind(0, Value::ofInt(S)).count();
        if (I % 3 == 0)
          Rem.bind(0, Value::ofInt(S))
              .bind(1, Value::ofInt(static_cast<int64_t>(I % 7)))
              .execute();
        ++I;
        Ops.fetch_add(1, std::memory_order_relaxed);
      }
    });

  Go.store(true, std::memory_order_release);
  while (Ops.load(std::memory_order_relaxed) < 2000)
    std::this_thread::yield();
  MigrationResult Res = R.migrateTo(makeGraphRepresentation(
      {GraphShape::Stick, PlacementSchemeKind::Striped, 64,
       ContainerKind::ConcurrentHashMap, ContainerKind::HashMap}));
  uint64_t After = Ops.load(std::memory_order_relaxed);
  while (Ops.load(std::memory_order_relaxed) < After + 2000)
    std::this_thread::yield();
  Stop.store(true, std::memory_order_release);
  for (auto &T : Threads)
    T.join();

  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Ins.boundEpoch(), R.planEpoch());
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

TEST(PreparedOp, BatchExecutionAcrossMigration) {
  ConcurrentRelation R(splitConfig());
  const RelationSpec &Spec = R.spec();
  PreparedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
  PreparedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));

  auto RunBatch = [&](int64_t Base) {
    std::vector<BoundOp> Ops;
    for (int64_t I = 0; I < 8; ++I)
      Ops.push_back(BoundOp::insert(
          Ins, {Value::ofInt(Base + I), Value::ofInt(I), Value::ofInt(I)}));
    Ops.push_back(BoundOp::query(Succ, {Value::ofInt(Base)}));
    executeBatch(Ops);
    for (int64_t I = 0; I < 8; ++I)
      EXPECT_EQ(Ops[static_cast<size_t>(I)].result(), 1) << I;
    EXPECT_EQ(Ops.back().result(), 1);
  };
  RunBatch(0);
  ASSERT_TRUE(R.migrateTo(makeGraphRepresentation(
                              {GraphShape::Diamond,
                               PlacementSchemeKind::Striped, 8,
                               ContainerKind::ConcurrentHashMap,
                               ContainerKind::HashMap}))
                  .Ok);
  // The same handles batch-execute on the new decomposition.
  RunBatch(100);
  EXPECT_EQ(R.size(), 16u);
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST(PreparedOp, RecompileCountsOneMissPerSignature) {
  ConcurrentRelation R(splitConfig());
  const RelationSpec &Spec = R.spec();
  PreparedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  PreparedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));

  // Warm both signatures.
  Ins.bind(0, Value::ofInt(1)).bind(1, Value::ofInt(2));
  Ins.bind(2, Value::ofInt(3)).execute();
  Succ.bind(0, Value::ofInt(1));
  Succ.count();
  uint64_t Warm = R.planCacheMisses();

  R.adaptPlans();

  // Many threads sharing the handles re-execute concurrently: the
  // recompile of each signature must count as a miss exactly once, not
  // once per thread (the losers of the rebind race hit the winner's
  // publication).
  constexpr unsigned NumThreads = 16;
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      Succ.bind(0, Value::ofInt(1));
      Ready.fetch_add(1);
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (int I = 0; I < 100; ++I)
        Succ.count();
    });
  while (Ready.load() != NumThreads)
    std::this_thread::yield();
  Go.store(true, std::memory_order_release);
  for (auto &Th : Threads)
    Th.join();

  EXPECT_EQ(R.planCacheMisses(), Warm + 1); // the one query recompile
}

TEST(PreparedOp, ConcurrentHandlesAcrossAdaptPlans) {
  // The handle-lifetime stress of the CI sanitizer jobs: worker threads
  // hammer shared prepared handles while the main thread repeatedly
  // retires every plan. Handles must keep executing correct, epoch-
  // current plans (retired snapshots stay reachable for stragglers, so
  // this is TSan/ASan-clean by construction), and the relation must end
  // consistent.
  ConcurrentRelation R(splitConfig());
  const RelationSpec &Spec = R.spec();
  PreparedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  PreparedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
  PreparedRemove Rm = R.prepareRemove(Spec.cols({"src", "dst"}));

  // adaptPlans' measurement must not race with mutations (header
  // contract), so mutators hold AdaptGate shared and the adapter takes
  // it uniquely. Queries take no gate at all: they overlap freely with
  // plan retirement, which is exactly the handle-lifetime race under
  // test — in-flight executions on retired plans plus racing rebinds.
  std::shared_mutex AdaptGate;
  constexpr unsigned NumThreads = 4;
  constexpr int OpsPerThread = 600;
  std::atomic<bool> Done{false};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I < OpsPerThread; ++I) {
        int64_t S = (T * OpsPerThread + I) % 32;
        int64_t D = I % 16;
        switch (I % 3) {
        case 0: {
          std::shared_lock<std::shared_mutex> G(AdaptGate);
          Ins.bind(0, Value::ofInt(S))
              .bind(1, Value::ofInt(D))
              .bind(2, Value::ofInt(I))
              .execute();
          break;
        }
        case 1:
          Succ.bind(0, Value::ofInt(S));
          Succ.count();
          break;
        case 2: {
          std::shared_lock<std::shared_mutex> G(AdaptGate);
          Rm.bind(0, Value::ofInt(S)).bind(1, Value::ofInt(D)).execute();
          break;
        }
        }
      }
    });
  std::thread Adapter([&] {
    while (!Done.load(std::memory_order_acquire)) {
      {
        std::unique_lock<std::shared_mutex> G(AdaptGate);
        R.adaptPlans();
      }
      std::this_thread::yield();
    }
  });
  for (auto &Th : Threads)
    Th.join();
  Done.store(true, std::memory_order_release);
  Adapter.join();

  // One quiescent execution rebinds onto whatever the adapter's final
  // retirement left current.
  Succ.bind(0, Value::ofInt(0));
  Succ.count();
  EXPECT_EQ(Succ.boundEpoch(), R.planEpoch());
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST(PreparedOp, BatchExecutesEveryOpWithResults) {
  ConcurrentRelation R(splitConfig());
  const RelationSpec &Spec = R.spec();
  PreparedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
  PreparedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  PreparedRemove Rm = R.prepareRemove(Spec.cols({"src", "dst"}));

  // A mixed batch in deliberately interleaved handle order: grouping
  // may reorder execution, but every op runs and reports its result in
  // its original position.
  std::vector<BoundOp> Ops;
  for (int64_t I = 0; I < 10; ++I)
    Ops.push_back(BoundOp::insert(
        Ins, {Value::ofInt(1), Value::ofInt(I), Value::ofInt(I * 7)}));
  Ops.push_back(BoundOp::insert(
      Ins, {Value::ofInt(1), Value::ofInt(3), Value::ofInt(-1)})); // dup key
  Ops.push_back(BoundOp::insert(
      Ins, {Value::ofInt(2), Value::ofInt(0), Value::ofInt(11)}));
  executeBatch(Ops);
  for (size_t I = 0; I < 10; ++I)
    EXPECT_EQ(Ops[I].result(), 1) << I;
  EXPECT_EQ(Ops[10].result(), 0); // put-if-absent refused
  EXPECT_EQ(Ops[11].result(), 1);
  EXPECT_EQ(R.size(), 11u);

  int64_t StreamedWeight = 0;
  // The visitor must outlive executeBatch: BoundOp stores a non-owning
  // function_ref. Ops in one batch are independent (grouping may
  // reorder them): the removes touch src 2, the query reads src 1.
  auto SumWeights = [&](const Tuple &T) {
    StreamedWeight += T.get(Spec.col("weight")).asInt();
  };
  std::vector<BoundOp> Mixed;
  Mixed.push_back(BoundOp::remove(Rm, {Value::ofInt(2), Value::ofInt(0)}));
  Mixed.push_back(BoundOp::query(Succ, {Value::ofInt(1)}, SumWeights));
  Mixed.push_back(BoundOp::remove(Rm, {Value::ofInt(2), Value::ofInt(42)}));
  executeBatch(Mixed);
  EXPECT_EQ(Mixed[0].result(), 1);
  EXPECT_EQ(Mixed[2].result(), 0); // no such edge
  EXPECT_EQ(Mixed[1].result(), 10);
  EXPECT_EQ(StreamedWeight, 7 * 45); // weights 0,7,...,63
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST(PreparedOp, RecycledFrameIdsDropStaleBindings) {
  // Dead handles return their frame id to a process free list; the
  // paired generation must make a successor handle start with a clean
  // per-thread frame instead of inheriting the predecessor's bindings.
  ConcurrentRelation R(splitConfig());
  const RelationSpec &Spec = R.spec();
  R.insert(key(Spec, 1, 2), weight(Spec, 5));
  R.insert(key(Spec, 3, 4), weight(Spec, 6));
  {
    PreparedQuery Old =
        R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst"}));
    Old.bind(0, Value::ofInt(1));
    EXPECT_EQ(Old.count(), 1u);
  } // Old dies: its frame id is free for reuse
  PreparedQuery Fresh =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst"}));
#if !defined(NDEBUG) && !defined(__SANITIZE_THREAD__) && \
    !defined(__SANITIZE_ADDRESS__)
  // Executing a recycled-id handle without binding must trip the
  // unbound-slots assert, not silently reuse the dead handle's frame.
  EXPECT_DEATH(Fresh.count(), "unbound slots");
#endif
  Fresh.bind(0, Value::ofInt(3));
  EXPECT_EQ(Fresh.count(), 1u);
  Fresh.forEach([&](const Tuple &T) {
    EXPECT_EQ(T.get(Spec.col("dst")).asInt(), 4);
  });
}

TEST(PreparedOp, WorksOnNonGraphSchema) {
  // The scheduler-style schema exercises prepared handles over a
  // custom two-path decomposition with string-free multi-column keys.
  auto Spec = std::make_shared<RelationSpec>(RelationSpec(
      {"pid", "state", "prio"}, {{{"pid"}, {"state", "prio"}}}));
  auto Decomp = std::make_shared<Decomposition>([&] {
    ColumnSet Pid = Spec->cols({"pid"});
    ColumnSet State = Spec->cols({"state"});
    ColumnSet Prio = Spec->cols({"prio"});
    Decomposition D(*Spec);
    NodeId Rho = D.addNode("rho", ColumnSet::empty(), Spec->allColumns());
    NodeId ByState = D.addNode("byState", State, Pid | Prio);
    NodeId Proc1 = D.addNode("proc1", State | Pid, Prio);
    NodeId Leaf1 = D.addNode("leaf1", Spec->allColumns(), ColumnSet::empty());
    NodeId Proc2 = D.addNode("proc2", Pid, State | Prio);
    NodeId Leaf2 = D.addNode("leaf2", Spec->allColumns(), ColumnSet::empty());
    D.addEdge(Rho, ByState, State, ContainerKind::TreeMap);
    D.addEdge(ByState, Proc1, Pid, ContainerKind::HashMap);
    D.addEdge(Proc1, Leaf1, Prio, ContainerKind::SingletonCell);
    D.addEdge(Rho, Proc2, Pid, ContainerKind::HashMap);
    D.addEdge(Proc2, Leaf2, State | Prio, ContainerKind::SingletonCell);
    return D;
  }());
  ASSERT_TRUE(Decomp->validate().ok());
  auto Placement = std::make_shared<LockPlacement>(
      makeCoarsePlacement(*Decomp));
  ConcurrentRelation Procs({Spec, Decomp, Placement, "sched-test"});

  PreparedInsert Spawn = Procs.prepareInsert(Spec->cols({"pid"}));
  PreparedQuery ByState =
      Procs.prepareQuery(Spec->cols({"state"}), Spec->cols({"pid", "prio"}));
  for (int64_t P = 0; P < 30; ++P)
    EXPECT_TRUE(Spawn.bind(0, Value::ofInt(P))
                    .bind(1, Value::ofInt(P % 3))
                    .bind(2, Value::ofInt(P % 5))
                    .execute());
  ByState.bind(0, Value::ofInt(1));
  EXPECT_EQ(ByState.count(), 10u);
  EXPECT_TRUE(Procs.verifyConsistency().ok());
}

} // namespace
