//===- tests/sync_test.cpp - Synchronization substrate tests ------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "sync/DeadlockDetector.h"
#include "sync/LockSet.h"
#include "sync/PhysicalLock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace crs;

namespace {

// ----------------------------------------------------------- PhysicalLock

TEST(PhysicalLock, SharedHoldersCoexist) {
  PhysicalLock L;
  L.lock(LockMode::Shared);
  EXPECT_TRUE(L.tryLock(LockMode::Shared));
  EXPECT_FALSE(L.tryLock(LockMode::Exclusive));
  L.unlock(LockMode::Shared);
  L.unlock(LockMode::Shared);
  EXPECT_TRUE(L.tryLock(LockMode::Exclusive));
  L.unlock(LockMode::Exclusive);
}

TEST(PhysicalLock, ExclusiveExcludesAll) {
  PhysicalLock L;
  L.lock(LockMode::Exclusive);
  EXPECT_FALSE(L.tryLock(LockMode::Shared));
  EXPECT_FALSE(L.tryLock(LockMode::Exclusive));
  L.unlock(LockMode::Exclusive);
}

TEST(PhysicalLock, ContentionCounters) {
  PhysicalLock L;
  EXPECT_EQ(L.acquisitions(), 0u);
  L.lock(LockMode::Exclusive);
  std::atomic<bool> Blocked{false};
  std::thread T([&] {
    Blocked.store(true, std::memory_order_release);
    L.lock(LockMode::Shared); // must block until main unlocks
    L.unlock(LockMode::Shared);
  });
  while (!Blocked.load(std::memory_order_acquire))
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  L.unlock(LockMode::Exclusive);
  T.join();
  // Exclusive acquisitions are exact; the single shared acquisition is
  // below the sampling period and credits nothing (class contract).
  EXPECT_EQ(L.acquisitions(), 1u);
  EXPECT_GE(L.contentions(), 1u);
}

TEST(PhysicalLock, SharedAcquisitionsAreSampled) {
  // A full period's worth of shared acquisitions on one thread credits
  // the lock at least one batch; the estimate never exceeds the truth
  // by more than a period per thread (here: one thread, so never).
  PhysicalLock L;
  constexpr uint64_t N = 4 * PhysicalLock::SharedSamplePeriod;
  for (uint64_t I = 0; I < N; ++I) {
    L.lock(LockMode::Shared);
    L.unlock(LockMode::Shared);
  }
  // The thread's sampling tick is process-global across locks, so the
  // phase is unknown — but N ticks land at least N/period − 1 credits.
  EXPECT_GE(L.acquisitions(), N - PhysicalLock::SharedSamplePeriod);
  EXPECT_LE(L.acquisitions(), N + PhysicalLock::SharedSamplePeriod);
  EXPECT_EQ(L.contentions(), 0u);
}

// ---------------------------------------------------------------- LockSet

LockOrderKey key(uint32_t Topo, int64_t K, uint32_t Stripe) {
  return {Topo, Tuple::of({{0, Value::ofInt(K)}}), Stripe};
}

TEST(LockOrderKey, TotalOrder) {
  EXPECT_LT(key(0, 5, 3), key(1, 0, 0)); // node order first
  EXPECT_LT(key(1, 4, 9), key(1, 5, 0)); // then instance key
  EXPECT_LT(key(1, 5, 0), key(1, 5, 1)); // then stripe
  EXPECT_EQ(key(2, 7, 1).compare(key(2, 7, 1)), 0);
}

TEST(LockSet, DeduplicatesRepeatedAcquisition) {
  PhysicalLock L;
  LockSet S;
  S.acquire(L, key(0, 0, 0), LockMode::Exclusive);
  // Many logical locks can map to one physical lock under a coarse
  // placement; re-acquisition is a no-op.
  S.acquire(L, key(1, 0, 0), LockMode::Exclusive);
  EXPECT_EQ(S.heldCount(), 1u);
  EXPECT_TRUE(S.holds(L));
  EXPECT_EQ(L.acquisitions(), 1u);
  S.releaseAll();
  EXPECT_FALSE(S.holds(L));
  EXPECT_TRUE(L.tryLock(LockMode::Exclusive));
  L.unlock(LockMode::Exclusive);
}

TEST(LockSet, HoldsAtLeastModes) {
  PhysicalLock A, B;
  LockSet S;
  S.acquire(A, key(0, 0, 0), LockMode::Shared);
  S.acquire(B, key(0, 1, 0), LockMode::Exclusive);
  EXPECT_TRUE(S.holdsAtLeast(A, LockMode::Shared));
  EXPECT_FALSE(S.holdsAtLeast(A, LockMode::Exclusive));
  EXPECT_TRUE(S.holdsAtLeast(B, LockMode::Shared));
  EXPECT_TRUE(S.holdsAtLeast(B, LockMode::Exclusive));
}

TEST(LockSet, TryAcquireWouldBlock) {
  PhysicalLock L;
  L.lock(LockMode::Exclusive); // someone else holds it
  LockSet S;
  EXPECT_EQ(S.tryAcquire(L, key(0, 0, 0), LockMode::Shared),
            AcquireResult::WouldBlock);
  EXPECT_EQ(S.heldCount(), 0u);
  L.unlock(LockMode::Exclusive);
  EXPECT_EQ(S.tryAcquire(L, key(0, 0, 0), LockMode::Shared),
            AcquireResult::Ok);
  S.releaseAll();
}

TEST(LockSet, InOrderTracking) {
  PhysicalLock A, B;
  LockSet S;
  EXPECT_TRUE(S.inOrder(key(0, 0, 0)));
  S.acquire(A, key(2, 0, 0), LockMode::Shared);
  EXPECT_FALSE(S.inOrder(key(1, 0, 0)));
  EXPECT_TRUE(S.inOrder(key(2, 0, 1)));
  // Out-of-order acquisitions must go through tryAcquire.
  EXPECT_EQ(S.tryAcquire(B, key(1, 0, 0), LockMode::Shared),
            AcquireResult::Ok);
  S.releaseAll();
  EXPECT_TRUE(S.inOrder(key(0, 0, 0))); // reset with the set
}

TEST(LockSet, ReleaseAllOnDestruction) {
  PhysicalLock L;
  {
    LockSet S;
    S.acquire(L, key(0, 0, 0), LockMode::Exclusive);
  }
  EXPECT_TRUE(L.tryLock(LockMode::Exclusive));
  L.unlock(LockMode::Exclusive);
}

// ------------------------------------------------------ DeadlockDetector

TEST(DeadlockDetector, DetectsTwoPartyCycle) {
  DeadlockDetector Det;
  // T1 holds R1, T2 holds R2; T1 waits for R2, then T2 waiting for R1
  // closes the cycle.
  Det.onAcquire(1, 101);
  Det.onAcquire(2, 102);
  EXPECT_FALSE(Det.onWait(1, 102));
  EXPECT_TRUE(Det.onWait(2, 101));
  EXPECT_EQ(Det.deadlocksDetected(), 1u);
}

TEST(DeadlockDetector, OrderedAcquisitionNeverCycles) {
  DeadlockDetector Det;
  // Both agents take resources in ascending order: no cycle possible.
  Det.onAcquire(1, 1);
  EXPECT_FALSE(Det.onWait(2, 1)); // T2 waits for R1
  Det.onRelease(1, 1);
  Det.onAcquire(2, 1);
  EXPECT_FALSE(Det.onWait(1, 2));
  Det.onAcquire(1, 2);
  EXPECT_EQ(Det.deadlocksDetected(), 0u);
}

TEST(DeadlockDetector, ThreePartyCycle) {
  DeadlockDetector Det;
  Det.onAcquire(1, 10);
  Det.onAcquire(2, 20);
  Det.onAcquire(3, 30);
  EXPECT_FALSE(Det.onWait(1, 20));
  EXPECT_FALSE(Det.onWait(2, 30));
  EXPECT_TRUE(Det.onWait(3, 10));
}

TEST(DeadlockDetector, SharedHoldersTracked) {
  DeadlockDetector Det;
  Det.onAcquire(1, 10);
  Det.onAcquire(2, 10); // shared holders of R10
  Det.onAcquire(2, 20);
  EXPECT_FALSE(Det.onWait(3, 10));
  Det.onRelease(1, 10);
  Det.onRelease(2, 10);
  Det.reset();
  EXPECT_EQ(Det.deadlocksDetected(), 0u);
}

} // namespace
