//===- tests/decomp_test.cpp - Decomposition & adequacy tests -----------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "decomp/Shapes.h"

#include <gtest/gtest.h>

using namespace crs;

namespace {

TEST(Shapes, AllGraphShapesAreAdequate) {
  RelationSpec Spec = makeGraphSpec();
  for (GraphShape S :
       {GraphShape::Stick, GraphShape::Split, GraphShape::Diamond}) {
    Decomposition D = makeGraphDecomposition(Spec, S);
    EXPECT_TRUE(D.validate().ok()) << graphShapeName(S) << ": "
                                   << D.validate().str();
  }
}

TEST(Shapes, ShapeStructure) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition Stick = makeGraphDecomposition(Spec, GraphShape::Stick);
  EXPECT_EQ(Stick.numNodes(), 4u);
  EXPECT_EQ(Stick.numEdges(), 3u);
  Decomposition Split = makeGraphDecomposition(Spec, GraphShape::Split);
  EXPECT_EQ(Split.numNodes(), 7u);
  EXPECT_EQ(Split.numEdges(), 6u);
  Decomposition Diamond = makeGraphDecomposition(Spec, GraphShape::Diamond);
  EXPECT_EQ(Diamond.numNodes(), 5u);
  EXPECT_EQ(Diamond.numEdges(), 5u);
  // The diamond shares node z: it has two incoming edges.
  unsigned Shared = 0;
  for (const auto &N : Diamond.nodes())
    if (N.InEdges.size() == 2)
      ++Shared;
  EXPECT_EQ(Shared, 1u);
}

TEST(Shapes, DCacheMatchesFigure2) {
  RelationSpec Spec = makeDCacheSpec();
  Decomposition D = makeDCacheDecomposition(Spec);
  EXPECT_TRUE(D.validate().ok()) << D.validate().str();
  EXPECT_EQ(D.numNodes(), 4u);
  EXPECT_EQ(D.numEdges(), 4u);
  // Node y (the dentry) is shared: reachable via the per-directory
  // TreeMap path and the global hashtable edge.
  const auto &Y = D.node(2);
  EXPECT_EQ(Y.InEdges.size(), 2u);
}

TEST(Adequacy, RejectsWrongRootType) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D(Spec);
  // Root residual missing 'weight'.
  D.addNode("rho", ColumnSet::empty(), Spec.cols({"src", "dst"}));
  EXPECT_FALSE(D.validate().ok());
}

TEST(Adequacy, RejectsLeafWithResidual) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D(Spec);
  NodeId Rho = D.addNode("rho", ColumnSet::empty(), Spec.allColumns());
  NodeId U = D.addNode("u", Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  D.addEdge(Rho, U, Spec.cols({"src"}), ContainerKind::HashMap);
  // u has residual {dst, weight} but no outgoing edges.
  ValidationResult R = D.validate();
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("residual"), std::string::npos);
}

TEST(Adequacy, RejectsTypeMismatchOnEdge) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D(Spec);
  NodeId Rho = D.addNode("rho", ColumnSet::empty(), Spec.allColumns());
  // Wrong: target keys should be {src}, residual {dst, weight}.
  NodeId U = D.addNode("u", Spec.cols({"dst"}), Spec.cols({"weight"}));
  D.addEdge(Rho, U, Spec.cols({"src"}), ContainerKind::HashMap);
  EXPECT_FALSE(D.validate().ok());
}

TEST(Adequacy, RejectsUnjustifiedSingleton) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D(Spec);
  NodeId Rho = D.addNode("rho", ColumnSet::empty(), Spec.allColumns());
  NodeId U = D.addNode("u", Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  // {src} alone does not determine {dst}: a singleton cell cannot hold
  // the adjacency set.
  D.addEdge(Rho, U, Spec.cols({"src"}), ContainerKind::HashMap);
  NodeId V = D.addNode("v", Spec.cols({"src", "dst"}), Spec.cols({"weight"}));
  D.addEdge(U, V, Spec.cols({"dst"}), ContainerKind::SingletonCell);
  NodeId W = D.addNode("w", Spec.allColumns(), ColumnSet::empty());
  D.addEdge(V, W, Spec.cols({"weight"}), ContainerKind::SingletonCell);
  ValidationResult R = D.validate();
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("SingletonCell"), std::string::npos);
}

TEST(Adequacy, RejectsEmptyEdgeColumns) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D(Spec);
  NodeId Rho = D.addNode("rho", ColumnSet::empty(), Spec.allColumns());
  NodeId U = D.addNode("u", ColumnSet::empty(), Spec.allColumns());
  D.addEdge(Rho, U, ColumnSet::empty(), ContainerKind::HashMap);
  EXPECT_FALSE(D.validate().ok());
}

TEST(Adequacy, RejectsCycle) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D(Spec);
  NodeId Rho = D.addNode("rho", ColumnSet::empty(), Spec.allColumns());
  NodeId U = D.addNode("u", Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  D.addEdge(Rho, U, Spec.cols({"src"}), ContainerKind::HashMap);
  // Nonsense back edge creating a cycle.
  D.addEdge(U, Rho, Spec.cols({"dst"}), ContainerKind::HashMap);
  ValidationResult R = D.validate();
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("cycle"), std::string::npos);
}

TEST(Topology, TopologicalOrderRespectsEdges) {
  RelationSpec Spec = makeGraphSpec();
  for (GraphShape S :
       {GraphShape::Stick, GraphShape::Split, GraphShape::Diamond}) {
    Decomposition D = makeGraphDecomposition(Spec, S);
    std::vector<uint32_t> Idx = D.topologicalIndex();
    for (const auto &E : D.edges())
      EXPECT_LT(Idx[E.Src], Idx[E.Dst]) << graphShapeName(S);
    EXPECT_EQ(Idx[D.root()], 0u);
  }
}

TEST(Dominators, DiamondDominance) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Diamond);
  // Nodes: 0=rho, 1=x, 2=y, 3=z, 4=w.
  EXPECT_TRUE(D.dominates(0, 3));  // root dominates everything
  EXPECT_FALSE(D.dominates(1, 3)); // z reachable around x (via y)
  EXPECT_FALSE(D.dominates(2, 3));
  EXPECT_TRUE(D.dominates(3, 4)); // w only reachable through z
  EXPECT_TRUE(D.dominates(3, 3)); // reflexive
  EXPECT_FALSE(D.dominates(3, 1));
}

TEST(Dominators, StickChainDominance) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Stick);
  for (NodeId N = 0; N < D.numNodes(); ++N)
    for (NodeId M = N; M < D.numNodes(); ++M)
      EXPECT_TRUE(D.dominates(N, M)); // a chain: everything dominates below
  EXPECT_FALSE(D.dominates(2, 1));
}

TEST(Rendering, DotAndSummary) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Diamond);
  std::string Dot = D.toDot();
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("style=dotted"), std::string::npos); // singleton edge
  std::string Summary = D.str();
  EXPECT_NE(Summary.find("rho"), std::string::npos);
  EXPECT_NE(Summary.find("SingletonCell"), std::string::npos);
}

TEST(Rendering, EdgeMaySingletonFollowsFds) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Stick);
  // Edge 2 (v -> w, {weight}) is justified by src,dst -> weight.
  EXPECT_TRUE(D.edgeMaySingleton(2));
  // Edge 1 (u -> v, {dst}) is not: {src} does not determine {dst}.
  EXPECT_FALSE(D.edgeMaySingleton(1));
}

} // namespace
