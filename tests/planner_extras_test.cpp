//===- tests/planner_extras_test.cpp - Sort elision & witness soundness -------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the planner's §5.2 sort-elision static analysis and for the
/// witness-node soundness criterion (a regression test for the join
/// fallacy found by the synthesis fuzzer: confirming each queried column
/// on a *different* branch of the decomposition fabricates tuples).
///
//===----------------------------------------------------------------------===//

#include "decomp/Shapes.h"
#include "lockplace/PlacementSchemes.h"
#include "plan/PlanValidity.h"
#include "plan/Planner.h"
#include "rel/RefRelation.h"
#include "runtime/ConcurrentRelation.h"

#include <gtest/gtest.h>

using namespace crs;

namespace {

// ------------------------------------------------------- sort elision

/// Locates the first Lock statement following a Scan in \p P.
const PlanStmt *lockAfterScan(const Plan &P) {
  bool SeenScan = false;
  for (const auto &St : P.Stmts) {
    if (St.K == PlanStmt::Kind::Scan)
      SeenScan = true;
    else if (SeenScan && St.K == PlanStmt::Kind::Lock)
      return &St;
  }
  return nullptr;
}

TEST(SortElision, TreeMapScanElidesLockSort) {
  // The paper's §5.2 example: under the fine placement, iterating the
  // dcache via ρx (a TreeMap) yields states in sorted order, which
  // coincides with the lock order — the lock on x can skip sorting.
  RelationSpec Spec = makeDCacheSpec();
  Decomposition D = makeDCacheDecomposition(Spec);
  LockPlacement P = makeFinePlacement(D);
  QueryPlanner Planner(D, P);

  // Find the tree-path plan: scans of exactly ρx (edge 0), xy (edge 1),
  // and yz (edge 3) — the paper's plan (4) traversal.
  auto Plans = Planner.enumerateQueryPlans(ColumnSet::empty(),
                                           Spec.allColumns());
  const Plan *TreePlan = nullptr;
  for (const Plan &Candidate : Plans) {
    std::vector<EdgeId> Scanned;
    for (const auto &St : Candidate.Stmts)
      if (St.K == PlanStmt::Kind::Scan)
        Scanned.push_back(St.Edge);
    if (Scanned == std::vector<EdgeId>{0, 1, 3})
      TreePlan = &Candidate;
  }
  ASSERT_NE(TreePlan, nullptr);
  const PlanStmt *L = lockAfterScan(*TreePlan);
  ASSERT_NE(L, nullptr);
  EXPECT_TRUE(L->SortElided) << TreePlan->str();
  EXPECT_NE(TreePlan->str().find("presorted"), std::string::npos);
}

TEST(SortElision, HashMapScanRequiresLockSort) {
  // Same shape but with hash containers: iteration order is arbitrary,
  // so the post-scan lock must sort.
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(
      Spec, GraphShape::Stick,
      {ContainerKind::HashMap, ContainerKind::HashMap});
  LockPlacement P = makeFinePlacement(D);
  QueryPlanner Planner(D, P);
  Plan Full = Planner.planQuery(ColumnSet::empty(), Spec.allColumns());
  const PlanStmt *L = lockAfterScan(Full);
  ASSERT_NE(L, nullptr);
  EXPECT_FALSE(L->SortElided) << Full.str();
}

TEST(SortElision, LookupOnlyPlansAreTriviallySorted) {
  RelationSpec Spec = makeGraphSpec();
  Decomposition D = makeGraphDecomposition(Spec, GraphShape::Stick);
  LockPlacement P = makeFinePlacement(D);
  QueryPlanner Planner(D, P);
  // Keyed by the full key: singleton state throughout.
  Plan Pt = Planner.planQuery(Spec.cols({"src", "dst"}),
                              Spec.cols({"weight"}));
  for (const auto &St : Pt.Stmts)
    if (St.K == PlanStmt::Kind::Lock)
      EXPECT_TRUE(St.SortElided) << Pt.str();
}

TEST(SortElision, ElidedPlansExecuteCorrectly) {
  // End-to-end: a representation whose plans exercise the no-sort path
  // still matches the reference semantics (the executor asserts
  // is_sorted in debug builds).
  RelationSpec SpecV = makeGraphSpec();
  auto Spec = std::make_shared<RelationSpec>(SpecV);
  auto D = std::make_shared<Decomposition>(makeGraphDecomposition(
      *Spec, GraphShape::Stick,
      {ContainerKind::TreeMap, ContainerKind::TreeMap}));
  auto P = std::make_shared<LockPlacement>(makeFinePlacement(*D));
  ConcurrentRelation R({Spec, D, P, "stick/tree"});
  RefRelation Ref(*Spec);
  for (int64_t S = 0; S < 6; ++S)
    for (int64_t Dst = 0; Dst < 6; ++Dst) {
      Tuple Key = Tuple::of({{Spec->col("src"), Value::ofInt(S)},
                             {Spec->col("dst"), Value::ofInt(Dst)}});
      Tuple W = Tuple::of({{Spec->col("weight"), Value::ofInt(S + Dst)}});
      R.insert(Key, W);
      Ref.insert(Key, W);
    }
  // Predecessor query: scan-heavy on a stick, locks after scans.
  for (int64_t Dst = 0; Dst < 6; ++Dst) {
    Tuple S = Tuple::of({{Spec->col("dst"), Value::ofInt(Dst)}});
    EXPECT_EQ(R.query(S, Spec->cols({"src", "weight"})),
              Ref.query(S, Spec->cols({"src", "weight"})));
  }
  EXPECT_EQ(R.scanAll(), Ref.allTuples());
}

// ------------------------------------------------ witness soundness

/// The decomposition shape that exposed the join fallacy: two branches
/// from the root, one keyed {c0}, the other keyed {c1, c2}.
Decomposition makeForkedDecomposition(const RelationSpec &Spec) {
  ColumnSet C0 = Spec.cols({"c0"});
  ColumnSet C1 = Spec.cols({"c1"});
  ColumnSet C2 = Spec.cols({"c2"});
  Decomposition D(Spec);
  NodeId Root = D.addNode("n0", ColumnSet::empty(), Spec.allColumns());
  NodeId N1 = D.addNode("n1", C0, C1 | C2);
  NodeId N2 = D.addNode("n2", C0 | C1, C2);
  NodeId N3 = D.addNode("n3", Spec.allColumns(), ColumnSet::empty());
  NodeId N4 = D.addNode("n4", C1 | C2, C0);
  NodeId N5 = D.addNode("n5", Spec.allColumns(), ColumnSet::empty());
  D.addEdge(Root, N1, C0, ContainerKind::ConcurrentHashMap);
  D.addEdge(N1, N2, C1, ContainerKind::CowArrayMap);
  D.addEdge(N2, N3, C2, ContainerKind::TreeMap);
  D.addEdge(Root, N4, C1 | C2, ContainerKind::ConcurrentSkipListMap);
  D.addEdge(N4, N5, C0, ContainerKind::TreeMap);
  return D;
}

TEST(WitnessSoundness, ForkedDecompositionQueriesCorrectly) {
  RelationSpec SpecV({"c0", "c1", "c2"}, {{{"c0", "c2"}, {"c1"}}});
  auto Spec = std::make_shared<RelationSpec>(SpecV);
  auto D = std::make_shared<Decomposition>(makeForkedDecomposition(*Spec));
  ASSERT_TRUE(D->validate().ok()) << D->validate().str();
  auto P = std::make_shared<LockPlacement>(
      makeStripedPlacement(*D, 16));
  ASSERT_TRUE(P->validate().ok());
  ASSERT_TRUE(P->validateContainerSafety().ok());

  ConcurrentRelation R({Spec, D, P, "forked"});
  RefRelation Ref(*Spec);
  ColumnSet Key = Spec->cols({"c0", "c2"});
  // Tuples chosen so the broken plan shape (confirm c0 on one branch,
  // (c1,c2) on the other) would fabricate combinations.
  auto Ins = [&](int64_t A, int64_t B, int64_t C) {
    Tuple S = Tuple::of({{Spec->col("c0"), Value::ofInt(A)},
                         {Spec->col("c2"), Value::ofInt(C)}});
    Tuple T = Tuple::of({{Spec->col("c1"), Value::ofInt(B)}});
    EXPECT_EQ(R.insert(S, T), Ref.insert(S, T));
  };
  Ins(0, 10, 100);
  Ins(1, 11, 101);
  Ins(2, 12, 102);

  // dom(s)={c0}, C={c1,c2}: exactly the failing signature.
  for (int64_t A = 0; A < 4; ++A) {
    Tuple S = Tuple::of({{Spec->col("c0"), Value::ofInt(A)}});
    EXPECT_EQ(R.query(S, Spec->cols({"c1", "c2"})),
              Ref.query(S, Spec->cols({"c1", "c2"})))
        << "c0=" << A;
  }
  // ... and all other single-column signatures.
  Spec->allColumns().forEach([&](ColumnId Col) {
    for (int64_t V = 0; V < 110; V += 7) {
      Tuple S = Tuple::of({{Col, Value::ofInt(V)}});
      ColumnSet Out = Spec->allColumns() - ColumnSet::of(Col);
      EXPECT_EQ(R.query(S, Out), Ref.query(S, Out));
    }
  });
}

TEST(WitnessSoundness, ValidityCheckerRejectsDisconnectedWitness) {
  RelationSpec SpecV({"c0", "c1", "c2"}, {{{"c0", "c2"}, {"c1"}}});
  Decomposition D = makeForkedDecomposition(SpecV);
  LockPlacement P = makeFinePlacement(D);

  // Hand-build the fallacious plan: scan the {c1,c2} branch, then
  // "confirm" c0 with a lookup on the other branch, and stop without
  // reaching a witnessing node.
  Plan Bad;
  Bad.Decomp = &D;
  Bad.Placement = &P;
  Bad.InputCols = SpecV.cols({"c0"});
  Bad.OutputCols = SpecV.cols({"c1", "c2"});
  auto Lock = [&](NodeId N) {
    PlanStmt L;
    L.K = PlanStmt::Kind::Lock;
    L.Node = N;
    L.InVar = 0;
    L.Sels.push_back(StripeSel::all());
    Bad.Stmts.push_back(L);
  };
  Lock(0);
  PlanStmt Scan;
  Scan.K = PlanStmt::Kind::Scan;
  Scan.InVar = 0;
  Scan.OutVar = 1;
  Scan.Edge = 3; // n0 -{c1,c2}-> n4
  Bad.Stmts.push_back(Scan);
  PlanStmt Lk;
  Lk.K = PlanStmt::Kind::Lookup;
  Lk.InVar = 1;
  Lk.OutVar = 2;
  Lk.Edge = 0; // n0 -{c0}-> n1 — the disconnected "confirmation"
  Bad.Stmts.push_back(Lk);
  Bad.NumVars = 3;
  Bad.ResultVar = 2;

  ValidationResult R = checkPlanValidity(Bad);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.str().find("witness"), std::string::npos) << R.str();
}

TEST(WitnessSoundness, PlannerPlansAlwaysEndAtAWitness) {
  RelationSpec SpecV({"c0", "c1", "c2"}, {{{"c0", "c2"}, {"c1"}}});
  Decomposition D = makeForkedDecomposition(SpecV);
  LockPlacement P = makeFinePlacement(D);
  QueryPlanner Planner(D, P);
  ColumnSet All = SpecV.allColumns();
  All.forEach([&](ColumnId Col) {
    ColumnSet DomS = ColumnSet::of(Col);
    for (const Plan &Plan : Planner.enumerateQueryPlans(DomS, All - DomS))
      EXPECT_TRUE(checkPlanValidity(Plan).ok()) << Plan.str();
  });
}

} // namespace
