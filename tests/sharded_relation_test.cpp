//===- tests/sharded_relation_test.cpp - Horizontal sharding -----------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// runtime/ShardedRelation.h: hash-partitioning one relation across N
/// independently synthesized ConcurrentRelation shards. Covers routing
/// choice and placement invariants, single-shard vs fan-out execution,
/// fan-out by an alternate key (routing fallback on a two-key spec),
/// prepared-handle lifetime across shard-local migrateTo/adaptPlans
/// (per-shard epoch delegation, exact per-shard miss accounting),
/// batches spanning shards, fan-out queries streaming during a
/// concurrent shard migration, the shard-at-a-time full rollout (plus
/// the OnlineTuner overload driving it), and a multi-thread mixed
/// workload with mid-run per-shard migration verified against the
/// replayed-log oracle (tests/StressHarness.h).
///
//===----------------------------------------------------------------------===//

#include "StressHarness.h"
#include "autotune/OnlineTuner.h"
#include "decomp/Shapes.h"
#include "lockplace/PlacementSchemes.h"
#include "runtime/ShardedRelation.h"
#include "workload/GraphWorkload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

using namespace crs;

namespace {

Tuple key(const RelationSpec &Spec, int64_t S, int64_t D) {
  return Tuple::of({{Spec.col("src"), Value::ofInt(S)},
                    {Spec.col("dst"), Value::ofInt(D)}});
}

Tuple weight(const RelationSpec &Spec, int64_t W) {
  return Tuple::of({{Spec.col("weight"), Value::ofInt(W)}});
}

RepresentationConfig stickCoarse() {
  return makeGraphRepresentation({GraphShape::Stick,
                                  PlacementSchemeKind::Coarse, 1,
                                  ContainerKind::HashMap,
                                  ContainerKind::TreeMap});
}

RepresentationConfig splitStriped(uint32_t Stripes = 64) {
  return makeGraphRepresentation({GraphShape::Split,
                                  PlacementSchemeKind::Striped, Stripes,
                                  ContainerKind::ConcurrentHashMap,
                                  ContainerKind::TreeMap});
}

/// A src value routed to shard \p Shard (probing the routing hash).
int64_t srcOnShard(const ShardedRelation &R, unsigned Shard,
                   int64_t From = 0) {
  const RelationSpec &Spec = R.spec();
  for (int64_t S = From; S < From + 4096; ++S)
    if (R.shardOf(Tuple::of({{Spec.col("src"), Value::ofInt(S)}})) == Shard)
      return S;
  ADD_FAILURE() << "no src routed to shard " << Shard << " in 4096 probes";
  return From;
}

TEST(ShardedRelation, RoutingChoiceAndBasicOps) {
  ShardedRelation R(stickCoarse(), 4);
  const RelationSpec &Spec = R.spec();
  // The graph spec's one minimal key is {src, dst}; with no anticipated
  // signatures the planner picks the smallest, lowest subset: {src}.
  EXPECT_EQ(R.routingColumns(), Spec.cols({"src"}));
  EXPECT_EQ(R.numShards(), 4u);

  for (int64_t I = 0; I < 200; ++I)
    ASSERT_TRUE(R.insert(key(Spec, I % 20, I), weight(Spec, I * 7)));
  EXPECT_FALSE(R.insert(key(Spec, 0, 0), weight(Spec, 999))); // duplicate s
  EXPECT_EQ(R.size(), 200u);
  size_t PerShard = 0;
  unsigned NonEmpty = 0;
  for (unsigned I = 0; I < 4; ++I) {
    PerShard += R.shard(I).size();
    NonEmpty += R.shard(I).size() > 0;
  }
  EXPECT_EQ(PerShard, 200u); // shards partition, never duplicate
  EXPECT_GE(NonEmpty, 2u);   // 20 srcs spread over 4 hash buckets

  // Routed query: src covers the routing column.
  std::vector<Tuple> Succ = R.query(
      Tuple::of({{Spec.col("src"), Value::ofInt(3)}}),
      Spec.cols({"dst", "weight"}));
  EXPECT_EQ(Succ.size(), 10u); // dsts 3, 23, ..., 183
  // Fan-out query: dst misses the routing column.
  std::vector<Tuple> Pred = R.query(
      Tuple::of({{Spec.col("dst"), Value::ofInt(7)}}),
      Spec.cols({"src", "weight"}));
  ASSERT_EQ(Pred.size(), 1u);
  EXPECT_EQ(Pred[0].get(Spec.col("weight")).asInt(), 49);

  EXPECT_EQ(R.remove(key(Spec, 7, 7)), 1u);
  EXPECT_EQ(R.remove(key(Spec, 7, 7)), 0u);
  EXPECT_EQ(R.size(), 199u);
  EXPECT_EQ(R.scanAll().size(), 199u);

  ValidationResult V = R.verifyConsistency();
  EXPECT_TRUE(V.ok()) << V.str();
}

TEST(ShardedRelation, SingleShardOpsTouchExactlyOneShard) {
  ShardedRelation R(stickCoarse(), 4);
  const RelationSpec &Spec = R.spec();
  ShardedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
  ShardedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  ShardedQuery Pred =
      R.prepareQuery(Spec.cols({"dst"}), Spec.cols({"src", "weight"}));
  EXPECT_EQ(Ins.numSlots(), 3u);
  EXPECT_TRUE(Succ.singleShard());
  EXPECT_FALSE(Pred.singleShard());

  auto CountsOf = [&](unsigned I) { return R.shard(I).operationCounts(); };
  auto TotalOf = [&] {
    uint64_t T = 0;
    for (unsigned I = 0; I < 4; ++I)
      T += CountsOf(I).total();
    return T;
  };

  uint64_t T0 = TotalOf();
  ASSERT_TRUE(Ins.bind(0, Value::ofInt(5))
                  .bind(1, Value::ofInt(6))
                  .bind(2, Value::ofInt(60))
                  .execute());
  EXPECT_EQ(TotalOf(), T0 + 1); // one hash, one shard, one operation

  T0 = TotalOf();
  EXPECT_EQ(Succ.bind(0, Value::ofInt(5)).count(), 1u);
  EXPECT_EQ(TotalOf(), T0 + 1);

  // The fan-out executes one query per shard.
  T0 = TotalOf();
  EXPECT_EQ(Pred.bind(0, Value::ofInt(6)).count(), 1u);
  EXPECT_EQ(TotalOf(), T0 + 4);
}

/// A two-key spec ({a, b}, a → b, b → a) decomposed split-style, so the
/// routing fallback (keys share no column: route by the first minimal
/// key) and fan-out removes by the alternate key are exercised.
TEST(ShardedRelation, AlternateKeyOpsFanOut) {
  auto Spec = std::make_shared<RelationSpec>(
      RelationSpec({"a", "b"}, {{{"a"}, {"b"}}, {{"b"}, {"a"}}}));
  ColumnSet A = Spec->cols({"a"}), B = Spec->cols({"b"});
  Decomposition D(*Spec);
  NodeId Rho = D.addNode("rho", ColumnSet::empty(), Spec->allColumns());
  NodeId Ua = D.addNode("ua", A, B);
  NodeId La = D.addNode("la", Spec->allColumns(), ColumnSet::empty());
  NodeId Vb = D.addNode("vb", B, A);
  NodeId Lb = D.addNode("lb", Spec->allColumns(), ColumnSet::empty());
  D.addEdge(Rho, Ua, A, ContainerKind::ConcurrentHashMap);
  D.addEdge(Ua, La, B, ContainerKind::SingletonCell);
  D.addEdge(Rho, Vb, B, ContainerKind::ConcurrentHashMap);
  D.addEdge(Vb, Lb, A, ContainerKind::SingletonCell);
  auto Decomp = std::make_shared<Decomposition>(std::move(D));
  ASSERT_TRUE(Decomp->validate().ok()) << Decomp->validate().str();
  auto Placement = std::make_shared<LockPlacement>(
      makeStripedPlacement(*Decomp, 16));
  ShardedRelation R({Spec, Decomp, Placement, "twokey"}, 3);
  // {a} and {b} are both minimal keys with empty intersection: the
  // fallback routes by the first whole key.
  EXPECT_EQ(R.routingColumns().size(), 1u);

  for (int64_t I = 0; I < 50; ++I)
    ASSERT_TRUE(R.insert(Tuple::of({{Spec->col("a"), Value::ofInt(I)}}),
                         Tuple::of({{Spec->col("b"), Value::ofInt(1000 + I)}})));
  EXPECT_EQ(R.size(), 50u);

  // Remove by the alternate key {b}: a key for the relation, but it
  // misses the routing column — the remove fans out and still removes
  // exactly the one tuple.
  ShardedRemove RemB = R.prepareRemove(B);
  EXPECT_FALSE(RemB.singleShard());
  EXPECT_EQ(RemB.bind(0, Value::ofInt(1007)).execute(), 1u);
  EXPECT_EQ(RemB.bind(0, Value::ofInt(1007)).execute(), 0u);
  EXPECT_EQ(R.size(), 49u);
  EXPECT_EQ(R.remove(Tuple::of({{Spec->col("b"), Value::ofInt(1013)}})), 1u);

  // Fan-out query by {b} finds the tuple wherever it lives.
  std::vector<Tuple> ByB =
      R.query(Tuple::of({{Spec->col("b"), Value::ofInt(1020)}}), A);
  ASSERT_EQ(ByB.size(), 1u);
  EXPECT_EQ(ByB[0].get(Spec->col("a")).asInt(), 20);
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();

  // The partitioned-uniqueness gap, made visible: the alternate key
  // {b} is not globally unique — two tuples agreeing only on b can
  // land on different shards, where neither shard's put-if-absent sees
  // the other. The merged FD check must flag the corruption, and the
  // fan-out remove takes out every cross-shard duplicate.
  int64_t A0 = -1, A1 = -1;
  for (int64_t V = 100; A1 < 0; ++V) {
    unsigned Shard =
        R.shardOf(Tuple::of({{Spec->col("a"), Value::ofInt(V)}}));
    if (A0 < 0 && Shard == 0)
      A0 = V;
    else if (A0 >= 0 && Shard != 0)
      A1 = V;
  }
  ASSERT_TRUE(R.insert(Tuple::of({{Spec->col("a"), Value::ofInt(A0)}}),
                       Tuple::of({{Spec->col("b"), Value::ofInt(5000)}})));
  ASSERT_TRUE(R.insert(Tuple::of({{Spec->col("a"), Value::ofInt(A1)}}),
                       Tuple::of({{Spec->col("b"), Value::ofInt(5000)}})));
  ValidationResult Corrupt = R.verifyConsistency();
  EXPECT_FALSE(Corrupt.ok()) << "cross-shard b-duplicate went undetected";
  EXPECT_NE(Corrupt.str().find("cross-shard"), std::string::npos)
      << Corrupt.str();
  EXPECT_EQ(R.remove(Tuple::of({{Spec->col("b"), Value::ofInt(5000)}})), 2u);
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

TEST(ShardedRelation, PreparedHandlesSurviveShardLocalMigration) {
  ShardedRelation R(stickCoarse(), 2);
  const RelationSpec &Spec = R.spec();
  ShardedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
  ShardedRemove Rem = R.prepareRemove(Spec.cols({"src", "dst"}));
  ShardedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  auto InsertEdge = [&](int64_t S, int64_t D, int64_t W) {
    return Ins.bind(0, Value::ofInt(S))
        .bind(1, Value::ofInt(D))
        .bind(2, Value::ofInt(W))
        .execute();
  };
  int64_t S0 = srcOnShard(R, 0), S1 = srcOnShard(R, 1);
  for (int64_t I = 0; I < 30; ++I) {
    ASSERT_TRUE(InsertEdge(S0, I, I));
    ASSERT_TRUE(InsertEdge(S1, I, I * 2));
  }

  // Shard-local migration: only shard 0's epoch moves (two flips); the
  // sharded handles keep serving both shards and shard 1 never rebinds.
  uint64_t E0 = R.shard(0).planEpoch(), E1 = R.shard(1).planEpoch();
  MigrationResult Res = R.migrateShard(0, splitStriped());
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(R.shard(0).planEpoch(), E0 + 2);
  EXPECT_EQ(R.shard(1).planEpoch(), E1);
  EXPECT_EQ(R.shard(0).config().Name, splitStriped().Name);
  EXPECT_EQ(R.shard(1).config().Name, stickCoarse().Name);

  // The handles transparently rebind against the migrated shard and
  // stay bound on the untouched one.
  EXPECT_EQ(Succ.bind(0, Value::ofInt(S0)).count(), 30u);
  EXPECT_EQ(Succ.bind(0, Value::ofInt(S1)).count(), 30u);
  EXPECT_TRUE(InsertEdge(S0, 100, 1));
  EXPECT_TRUE(InsertEdge(S1, 100, 1));
  EXPECT_EQ(
      Rem.bind(0, Value::ofInt(S0)).bind(1, Value::ofInt(100)).execute(), 1u);
  EXPECT_EQ(
      Rem.bind(0, Value::ofInt(S1)).bind(1, Value::ofInt(100)).execute(), 1u);
  EXPECT_EQ(R.size(), 60u);
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

TEST(ShardedRelation, AdaptPlansOnOneShardMissesOnlyThere) {
  ShardedRelation R(stickCoarse(), 2);
  const RelationSpec &Spec = R.spec();
  ShardedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
  ShardedRemove Rem = R.prepareRemove(Spec.cols({"src", "dst"}));
  ShardedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  int64_t S0 = srcOnShard(R, 0), S1 = srcOnShard(R, 1);
  auto RunAll = [&](int64_t S) {
    ASSERT_TRUE(Ins.bind(0, Value::ofInt(S))
                    .bind(1, Value::ofInt(999))
                    .bind(2, Value::ofInt(1))
                    .execute());
    EXPECT_GE(Succ.bind(0, Value::ofInt(S)).count(), 1u);
    EXPECT_EQ(
        Rem.bind(0, Value::ofInt(S)).bind(1, Value::ofInt(999)).execute(), 1u);
  };
  // Warm all three signatures on both shards.
  RunAll(S0);
  RunAll(S1);
  uint64_t M0 = R.shard(0).planCacheMisses();
  uint64_t M1 = R.shard(1).planCacheMisses();

  // Replan one shard: its epoch bump retires its plans alone.
  R.shard(0).adaptPlans();

  // Exactly one recompile per signature on the replanned shard — no
  // matter how often the handles execute — and zero anywhere else.
  for (int Round = 0; Round < 3; ++Round) {
    RunAll(S0);
    RunAll(S1);
  }
  EXPECT_EQ(R.shard(0).planCacheMisses(), M0 + 3);
  EXPECT_EQ(R.shard(1).planCacheMisses(), M1);
}

TEST(ShardedRelation, BatchesSpanningShardsGroupPerShard) {
  ShardedRelation R(stickCoarse(), 4);
  const RelationSpec &Spec = R.spec();
  ShardedInsert Ins = R.prepareInsert(Spec.cols({"src", "dst"}));
  ShardedRemove Rem = R.prepareRemove(Spec.cols({"src", "dst"}));
  ShardedQuery Succ =
      R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));

  // One batch of inserts crossing every shard (srcs 0..15 over 4 hash
  // buckets), with one deliberate duplicate: same handle keeps original
  // relative order under the grouping, so the duplicate must lose.
  std::vector<BoundOp> Batch;
  for (int64_t S = 0; S < 16; ++S)
    Batch.push_back(Ins.boundOp(
        {Value::ofInt(S), Value::ofInt(S + 100), Value::ofInt(S * 3)}));
  Batch.push_back(Ins.boundOp(
      {Value::ofInt(0), Value::ofInt(100), Value::ofInt(777)}));
  executeBatch(Batch);
  for (size_t I = 0; I < 16; ++I)
    EXPECT_EQ(Batch[I].result(), 1) << "insert " << I << " should have won";
  EXPECT_EQ(Batch[16].result(), 0) << "duplicate insert should have lost";
  EXPECT_EQ(R.size(), 16u);

  // A mixed batch: streaming queries and removes interleaved across
  // shards; results land by original position.
  int64_t WeightSum = 0;
  auto SumWeights = [&](const Tuple &T) {
    WeightSum += T.get(Spec.col("weight")).asInt();
  };
  std::vector<BoundOp> Mixed;
  for (int64_t S = 0; S < 16; S += 2)
    Mixed.push_back(Succ.boundOp({Value::ofInt(S)}, SumWeights));
  for (int64_t S = 1; S < 16; S += 2)
    Mixed.push_back(
        Rem.boundOp({Value::ofInt(S), Value::ofInt(S + 100)}));
  executeBatch(Mixed);
  for (size_t I = 0; I < 8; ++I)
    EXPECT_EQ(Mixed[I].result(), 1) << "query " << I << " states";
  for (size_t I = 8; I < 16; ++I)
    EXPECT_EQ(Mixed[I].result(), 1) << "remove " << I;
  EXPECT_EQ(WeightSum, 3 * (0 + 2 + 4 + 6 + 8 + 10 + 12 + 14));
  EXPECT_EQ(R.size(), 8u);
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

TEST(ShardedRelation, FanOutQueriesDuringShardMigrationLoseNothing) {
  ShardedRelation R(stickCoarse(), 2);
  const RelationSpec &Spec = R.spec();
  // Stable edges the fan-out must always see exactly once: (s, 777)
  // for s in [0, 32), never mutated below.
  constexpr int64_t StableSrcs = 32, StableDst = 777;
  for (int64_t S = 0; S < StableSrcs; ++S)
    ASSERT_TRUE(R.insert(key(Spec, S, StableDst), weight(Spec, S * 7 + 1)));

  ShardedQuery Pred =
      R.prepareQuery(Spec.cols({"dst"}), Spec.cols({"src", "weight"}));
  ASSERT_FALSE(Pred.singleShard());

  // Churn on disjoint keys (srcs ≥ 1000, dsts ≠ 777) from one writer
  // thread while another migrates the shards one at a time, twice.
  std::atomic<bool> Done{false};
  std::thread Churn([&] {
    Xoshiro256 Rng(42);
    while (!Done.load(std::memory_order_acquire)) {
      int64_t S = 1000 + static_cast<int64_t>(Rng.nextBounded(32));
      int64_t D = static_cast<int64_t>(Rng.nextBounded(500));
      if (Rng.nextBounded(2))
        R.insert(key(Spec, S, D), weight(Spec, 5));
      else
        R.remove(key(Spec, S, D));
    }
  });
  std::thread Migrator([&] {
    for (const RepresentationConfig &Target :
         {splitStriped(), stickCoarse()})
      for (unsigned Shard = 0; Shard < 2; ++Shard) {
        MigrationResult Res = R.migrateShard(Shard, Target);
        EXPECT_TRUE(Res.Ok) << Res.Error;
      }
    Done.store(true, std::memory_order_release);
  });

  // Under-bound queries streaming through the migrations: every merge
  // must contain each stable edge exactly once with its exact weight —
  // a lost tuple (missed by backfill), a duplicate (mirrored twice),
  // or a torn weight would all surface here.
  uint64_t Rounds = 0;
  while (!Done.load(std::memory_order_acquire)) {
    std::set<int64_t> Seen;
    uint32_t States = 0;
    Pred.bind(0, Value::ofInt(StableDst));
    Pred.forEach([&](const Tuple &T) {
      ++States;
      int64_t S = T.get(Spec.col("src")).asInt();
      EXPECT_TRUE(Seen.insert(S).second)
          << "duplicate stable edge (" << S << ", 777) in a fan-out merge";
      EXPECT_EQ(T.get(Spec.col("weight")).asInt(), S * 7 + 1);
    });
    EXPECT_EQ(States, StableSrcs) << "fan-out merge lost stable edges";
    EXPECT_EQ(Seen.size(), static_cast<size_t>(StableSrcs));
    ++Rounds;
  }
  Migrator.join();
  Churn.join();
  EXPECT_GT(Rounds, 0u);
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

TEST(ShardedRelation, FullMigrateToRollsEveryShard) {
  ShardedRelation R(stickCoarse(), 3);
  const RelationSpec &Spec = R.spec();
  for (int64_t I = 0; I < 90; ++I)
    ASSERT_TRUE(R.insert(key(Spec, I % 30, I), weight(Spec, I)));
  std::vector<Tuple> Before = R.scanAll();

  // Illegal targets reject up front with every shard untouched.
  MigrationResult Bad = R.migrateTo(RepresentationConfig{});
  EXPECT_FALSE(Bad.Ok);
  for (unsigned I = 0; I < 3; ++I)
    EXPECT_EQ(R.shard(I).config().Name, stickCoarse().Name);

  MigrationResult Res = R.migrateTo(splitStriped());
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.Backfilled, 90u); // aggregated across the three shards
  for (unsigned I = 0; I < 3; ++I)
    EXPECT_EQ(R.shard(I).config().Name, splitStriped().Name);
  EXPECT_EQ(R.scanAll(), Before);
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();

  // Re-issuing the rollout is free: shards already serving the target
  // are skipped, not re-migrated through another dual-write/backfill.
  uint64_t Epoch0 = R.shard(0).planEpoch();
  MigrationResult Again = R.migrateTo(splitStriped());
  ASSERT_TRUE(Again.Ok) << Again.Error;
  EXPECT_EQ(Again.Backfilled, 0u);
  EXPECT_EQ(R.shard(0).planEpoch(), Epoch0); // untouched, handles stay bound
}

TEST(ShardedRelation, OnlineTunerMigratesShardAtATime) {
  ShardedRelation R(stickCoarse(), 2);
  const RelationSpec &Spec = R.spec();
  for (int64_t I = 0; I < 60; ++I)
    ASSERT_TRUE(R.insert(key(Spec, I % 6, I), weight(Spec, I * 2)));
  R.query(Tuple::of({{Spec.col("src"), Value::ofInt(2)}}),
          Spec.cols({"dst", "weight"}));
  std::vector<Tuple> Before = R.scanAll();

  GraphVariant Target{GraphShape::Split, PlacementSchemeKind::Striped, 64,
                      ContainerKind::ConcurrentHashMap,
                      ContainerKind::TreeMap};
  // Canary shard 0 onto the winner first: the tuner's already-serving
  // test must look at the whole fleet, not shard 0's config, or the
  // canary would stall the rollout of the remaining shards forever.
  ASSERT_TRUE(R.migrateShard(0, makeGraphRepresentation(Target)).Ok);
  OnlineTunerConfig Cfg;
  Cfg.Candidates = {Target};
  Cfg.Threads = 4;
  // A permissive policy exercises the streak and trigger
  // deterministically (as in the single-relation tuner test).
  Cfg.HysteresisRatio = 0.0;
  Cfg.ConfirmTicks = 2;
  OnlineTuner Tuner(R, Cfg);

  TuneTick T1 = Tuner.tick();
  EXPECT_TRUE(T1.Scored);
  EXPECT_FALSE(T1.Migrated);
  // The fleet's cost is the shard-weighted mean over its serving
  // configs: the half-rolled fleet's cost mixes the incumbent's with
  // the winner's. Were it scored on the canary shard alone (the old
  // bug), CurrentCost would equal BestCost identically and no
  // hysteresis ratio > 1 could ever pass.
  EXPECT_NE(T1.CurrentCost, T1.BestCost);
  TuneTick T2 = Tuner.tick();
  ASSERT_TRUE(T2.Migrated) << T2.Migration.Error;
  // The trigger rolled the winner across the whole fleet.
  for (unsigned I = 0; I < 2; ++I)
    EXPECT_EQ(R.shard(I).config().Name, T2.BestName);
  EXPECT_EQ(R.scanAll(), Before);
  EXPECT_TRUE(R.verifyConsistency().ok());
}

TEST(ShardedRelation, StressMixedWorkloadWithPerShardMigrationOracle) {
  ShardedRelation R(stickCoarse(), 4);
  const RelationSpec &Spec = R.spec();
  ShardedGraphTarget Target(R);

  // Four threads of the contended mixed workload; mid-run, the whole
  // fleet migrates shard-at-a-time under traffic, with a live
  // statistics sample between shards (tests/StressHarness.h — the seed
  // prints on failure and CRS_STRESS_SEED reruns it).
  stress::StressOptions Opts;
  Opts.Seed = 20260728;
  stress::StressReport Rep =
      stress::runStressWithOracle(Target, Opts, [&] {
        for (unsigned Shard = 0; Shard < R.numShards(); ++Shard) {
          MigrationResult Res = R.migrateShard(Shard, splitStriped());
          ASSERT_TRUE(Res.Ok) << Res.Error;
          EXPECT_GT(R.sampleStatistics().NodeInstances, 0u);
        }
      });

  EXPECT_TRUE(Rep.Errors.empty())
      << Rep.Errors.size() << " outcome mismatches, first: " << Rep.Errors[0]
      << "; " << Rep.hint();
  EXPECT_EQ(R.size(), Rep.Expected.size()) << Rep.hint();
  std::vector<std::string> Diffs =
      stress::diffFinalState(R.scanAll(), Spec, Rep.Expected);
  EXPECT_TRUE(Diffs.empty()) << Diffs.size() << " diffs, first: " << Diffs[0]
                             << "; " << Rep.hint();
  for (unsigned I = 0; I < R.numShards(); ++I)
    EXPECT_EQ(R.shard(I).config().Name, splitStriped().Name);
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

} // namespace
