//===- tests/runtime_test.cpp - ConcurrentRelation vs the §2 semantics -------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Sequential correctness of synthesized representations: every
/// representation (all Figure 5 variants plus the dcache decomposition
/// under several placements) must implement exactly the reference
/// semantics of §2, checked operation-by-operation against RefRelation
/// on randomized workloads, plus structural consistency invariants.
///
//===----------------------------------------------------------------------===//

#include "autotune/Autotuner.h"
#include "decomp/Shapes.h"
#include "lockplace/PlacementSchemes.h"
#include "rel/RefRelation.h"
#include "runtime/ConcurrentRelation.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace crs;

namespace {

Tuple graphKey(const RelationSpec &Spec, int64_t Src, int64_t Dst) {
  return Tuple::of({{Spec.col("src"), Value::ofInt(Src)},
                    {Spec.col("dst"), Value::ofInt(Dst)}});
}

Tuple graphWeight(const RelationSpec &Spec, int64_t W) {
  return Tuple::of({{Spec.col("weight"), Value::ofInt(W)}});
}

class GraphRepresentationTest
    : public ::testing::TestWithParam<std::pair<std::string, int>> {};

/// Builds the representation named by the parameter from the Figure 5
/// menu.
RepresentationConfig namedConfig(const std::string &Name) {
  for (auto &[N, C] : figure5Representations())
    if (N == Name)
      return C;
  ADD_FAILURE() << "unknown representation " << Name;
  return {};
}

std::vector<std::pair<std::string, int>> allNamedReps() {
  std::vector<std::pair<std::string, int>> Out;
  int I = 0;
  for (auto &[N, C] : figure5Representations())
    Out.push_back({N, I++});
  return Out;
}

TEST_P(GraphRepresentationTest, BasicInsertQueryRemove) {
  RepresentationConfig Config = namedConfig(GetParam().first);
  ASSERT_TRUE(Config.Placement);
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);

  EXPECT_TRUE(R.insert(graphKey(Spec, 1, 2), graphWeight(Spec, 42)));
  EXPECT_EQ(R.size(), 1u);

  // §2: a second insert with the same key leaves the relation unchanged.
  EXPECT_FALSE(R.insert(graphKey(Spec, 1, 2), graphWeight(Spec, 101)));
  EXPECT_EQ(R.size(), 1u);

  auto Successors = R.query(
      Tuple::of({{Spec.col("src"), Value::ofInt(1)}}),
      Spec.cols({"dst", "weight"}));
  ASSERT_EQ(Successors.size(), 1u);
  EXPECT_EQ(Successors[0].get(Spec.col("dst")).asInt(), 2);
  EXPECT_EQ(Successors[0].get(Spec.col("weight")).asInt(), 42);

  auto Predecessors = R.query(
      Tuple::of({{Spec.col("dst"), Value::ofInt(2)}}),
      Spec.cols({"src", "weight"}));
  ASSERT_EQ(Predecessors.size(), 1u);
  EXPECT_EQ(Predecessors[0].get(Spec.col("src")).asInt(), 1);

  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();

  EXPECT_EQ(R.remove(graphKey(Spec, 1, 2)), 1u);
  EXPECT_EQ(R.size(), 0u);
  EXPECT_EQ(R.remove(graphKey(Spec, 1, 2)), 0u);
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

TEST_P(GraphRepresentationTest, RandomOpsMatchReferenceSemantics) {
  RepresentationConfig Config = namedConfig(GetParam().first);
  ASSERT_TRUE(Config.Placement);
  const RelationSpec &Spec = *Config.Spec;
  ConcurrentRelation R(Config);
  RefRelation Ref(Spec);
  Xoshiro256 Rng(1234 + GetParam().second);

  const int64_t KeyRange = 8;
  for (int Step = 0; Step < 400; ++Step) {
    int64_t Src = static_cast<int64_t>(Rng.nextBounded(KeyRange));
    int64_t Dst = static_cast<int64_t>(Rng.nextBounded(KeyRange));
    int64_t W = static_cast<int64_t>(Rng.nextBounded(100));
    switch (Rng.nextBounded(4)) {
    case 0: { // insert
      bool A = R.insert(graphKey(Spec, Src, Dst), graphWeight(Spec, W));
      bool B = Ref.insert(graphKey(Spec, Src, Dst), graphWeight(Spec, W));
      ASSERT_EQ(A, B) << "insert result diverged at step " << Step;
      break;
    }
    case 1: { // remove
      unsigned A = R.remove(graphKey(Spec, Src, Dst));
      unsigned B = Ref.remove(graphKey(Spec, Src, Dst));
      ASSERT_EQ(A, B) << "remove count diverged at step " << Step;
      break;
    }
    case 2: { // successors query
      auto A = R.query(Tuple::of({{Spec.col("src"), Value::ofInt(Src)}}),
                       Spec.cols({"dst", "weight"}));
      auto B = Ref.query(Tuple::of({{Spec.col("src"), Value::ofInt(Src)}}),
                         Spec.cols({"dst", "weight"}));
      ASSERT_EQ(A, B) << "successors diverged at step " << Step;
      break;
    }
    default: { // predecessors query
      auto A = R.query(Tuple::of({{Spec.col("dst"), Value::ofInt(Dst)}}),
                       Spec.cols({"src", "weight"}));
      auto B = Ref.query(Tuple::of({{Spec.col("dst"), Value::ofInt(Dst)}}),
                         Spec.cols({"src", "weight"}));
      ASSERT_EQ(A, B) << "predecessors diverged at step " << Step;
      break;
    }
    }
    ASSERT_EQ(R.size(), Ref.size());
  }
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
  // Full contents agree.
  EXPECT_EQ(R.scanAll(), Ref.allTuples());
}

INSTANTIATE_TEST_SUITE_P(
    Figure5, GraphRepresentationTest, ::testing::ValuesIn(allNamedReps()),
    [](const ::testing::TestParamInfo<std::pair<std::string, int>> &Info) {
      std::string Name = Info.param.first;
      for (char &C : Name)
        if (C == ' ')
          C = '_';
      return Name;
    });

TEST(DCacheRuntime, Figure2Relation) {
  auto Spec = std::make_shared<RelationSpec>(makeDCacheSpec());
  auto D = std::make_shared<Decomposition>(makeDCacheDecomposition(*Spec));
  auto P = std::make_shared<LockPlacement>(makeFinePlacement(*D));
  ConcurrentRelation R({Spec, D, P, "dcache/fine"});

  auto Entry = [&](int64_t Parent, const char *Name, int64_t Child) {
    return std::make_pair(
        Tuple::of({{Spec->col("parent"), Value::ofInt(Parent)},
                   {Spec->col("name"), Value::ofString(Name)}}),
        Tuple::of({{Spec->col("child"), Value::ofInt(Child)}}));
  };

  // The Figure 2(b) instance.
  auto E1 = Entry(1, "a", 2);
  auto E2 = Entry(2, "b", 3);
  auto E3 = Entry(2, "c", 4);
  EXPECT_TRUE(R.insert(E1.first, E1.second));
  EXPECT_TRUE(R.insert(E2.first, E2.second));
  EXPECT_TRUE(R.insert(E3.first, E3.second));
  EXPECT_EQ(R.size(), 3u);
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();

  // Directory listing of parent 2 (iterate children of a directory).
  auto Listing = R.query(Tuple::of({{Spec->col("parent"), Value::ofInt(2)}}),
                         Spec->cols({"name", "child"}));
  ASSERT_EQ(Listing.size(), 2u);

  // Path lookup via the (parent, name) hashtable edge.
  auto Hit = R.query(E2.first, Spec->cols({"child"}));
  ASSERT_EQ(Hit.size(), 1u);
  EXPECT_EQ(Hit[0].get(Spec->col("child")).asInt(), 3);

  // Unmount-style removal.
  EXPECT_EQ(R.remove(E2.first), 1u);
  EXPECT_EQ(R.size(), 2u);
  EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
}

TEST(DCacheRuntime, RandomOpsAgainstReference) {
  auto Spec = std::make_shared<RelationSpec>(makeDCacheSpec());
  auto D = std::make_shared<Decomposition>(makeDCacheDecomposition(*Spec));
  for (bool Coarse : {true, false}) {
    auto P = std::make_shared<LockPlacement>(
        Coarse ? makeCoarsePlacement(*D) : makeFinePlacement(*D));
    ConcurrentRelation R({Spec, D, P, "dcache"});
    RefRelation Ref(*Spec);
    Xoshiro256 Rng(99);
    const char *Names[] = {"a", "b", "c", "d"};
    for (int Step = 0; Step < 300; ++Step) {
      int64_t Parent = static_cast<int64_t>(Rng.nextBounded(4));
      const char *Name = Names[Rng.nextBounded(4)];
      int64_t Child = static_cast<int64_t>(Rng.nextBounded(6));
      Tuple Key = Tuple::of({{Spec->col("parent"), Value::ofInt(Parent)},
                             {Spec->col("name"), Value::ofString(Name)}});
      switch (Rng.nextBounded(3)) {
      case 0:
        ASSERT_EQ(
            R.insert(Key, Tuple::of({{Spec->col("child"),
                                      Value::ofInt(Child)}})),
            Ref.insert(Key, Tuple::of({{Spec->col("child"),
                                        Value::ofInt(Child)}})));
        break;
      case 1:
        ASSERT_EQ(R.remove(Key), Ref.remove(Key));
        break;
      default:
        ASSERT_EQ(R.query(Tuple::of({{Spec->col("parent"),
                                      Value::ofInt(Parent)}}),
                          Spec->cols({"name", "child"})),
                  Ref.query(Tuple::of({{Spec->col("parent"),
                                        Value::ofInt(Parent)}}),
                            Spec->cols({"name", "child"})));
        break;
      }
    }
    EXPECT_EQ(R.scanAll(), Ref.allTuples());
    EXPECT_TRUE(R.verifyConsistency().ok()) << R.verifyConsistency().str();
  }
}

TEST(RuntimeExplain, PlansArePrintable) {
  RepresentationConfig Config = namedConfig("Split 4");
  ASSERT_TRUE(Config.Placement);
  ConcurrentRelation R(Config);
  const RelationSpec &Spec = *Config.Spec;
  std::string Q =
      R.explainQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
  EXPECT_NE(Q.find("lookup"), std::string::npos) << Q;
  EXPECT_NE(Q.find("lock"), std::string::npos) << Q;
  std::string Rm = R.explainRemove(Spec.cols({"src", "dst"}));
  EXPECT_NE(Rm.find("lock!"), std::string::npos) << Rm;
}

} // namespace
