//===- tests/support_test.cpp - Support utilities tests -----------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/FunctionRef.h"
#include "support/Hashing.h"
#include "support/Interner.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

using namespace crs;

namespace {

TEST(Hashing, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  uint64_t Base = mix64(0x1234567890abcdefULL);
  int TotalFlips = 0;
  for (int Bit = 0; Bit < 64; ++Bit) {
    uint64_t Flipped = mix64(0x1234567890abcdefULL ^ (1ULL << Bit));
    TotalFlips += __builtin_popcountll(Base ^ Flipped);
  }
  double Avg = TotalFlips / 64.0;
  EXPECT_GT(Avg, 24.0);
  EXPECT_LT(Avg, 40.0);
}

TEST(Hashing, BytesDeterministic) {
  EXPECT_EQ(hashBytes("abc"), hashBytes("abc"));
  EXPECT_NE(hashBytes("abc"), hashBytes("abd"));
  EXPECT_NE(hashBytes(""), hashBytes(std::string_view("\0", 1)));
}

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 A(7), B(7), C(8);
  for (int I = 0; I < 100; ++I) {
    uint64_t X = A.next();
    EXPECT_EQ(X, B.next());
    (void)C.next();
  }
  Xoshiro256 D(7);
  Xoshiro256 E(8);
  EXPECT_NE(D.next(), E.next());
}

TEST(Rng, BoundedIsInRangeAndRoughlyUniform) {
  Xoshiro256 R(42);
  std::vector<int> Counts(10, 0);
  for (int I = 0; I < 100000; ++I) {
    uint64_t V = R.nextBounded(10);
    ASSERT_LT(V, 10u);
    ++Counts[V];
  }
  for (int C : Counts) {
    EXPECT_GT(C, 9000);
    EXPECT_LT(C, 11000);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 R(1);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    ASSERT_GE(D, 0.0);
    ASSERT_LT(D, 1.0);
  }
}

TEST(Stats, OnlineMeanVariance) {
  OnlineStats S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_NEAR(S.variance(), 4.5714, 1e-3); // sample variance
  EXPECT_EQ(S.min(), 2.0);
  EXPECT_EQ(S.max(), 9.0);
}

TEST(Stats, Quantiles) {
  std::vector<double> V{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(V, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(V, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(V, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(V, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Stats, MeanOfLastMatchesPaperMethodology) {
  // The paper keeps the last 5 of 8 runs.
  std::vector<double> Runs{100, 100, 100, 10, 10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(meanOfLast(Runs, 5), 10.0);
  EXPECT_DOUBLE_EQ(meanOfLast(Runs, 100), meanOf(Runs));
}

TEST(Interner, IdsStableAndShared) {
  StringInterner I;
  auto A = I.intern("foo");
  auto B = I.intern("bar");
  auto C = I.intern("foo");
  EXPECT_EQ(A, C);
  EXPECT_NE(A, B);
  EXPECT_EQ(I.lookup(A), "foo");
  EXPECT_EQ(I.lookup(B), "bar");
  EXPECT_EQ(I.size(), 2u);
}

TEST(Interner, ThreadSafety) {
  StringInterner I;
  std::vector<std::thread> Threads;
  std::vector<std::vector<StringInterner::Id>> Ids(4);
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&I, &Ids, T] {
      for (int K = 0; K < 200; ++K)
        Ids[T].push_back(I.intern("key" + std::to_string(K)));
    });
  for (auto &T : Threads)
    T.join();
  // All threads must agree on every id.
  for (int T = 1; T < 4; ++T)
    EXPECT_EQ(Ids[T], Ids[0]);
  EXPECT_EQ(I.size(), 200u);
}

TEST(FunctionRef, WrapsLambdasWithoutOwnership) {
  int Calls = 0;
  auto Lambda = [&Calls](int X) {
    ++Calls;
    return X * 2;
  };
  function_ref<int(int)> F = Lambda;
  EXPECT_EQ(F(21), 42);
  EXPECT_EQ(Calls, 1);
  function_ref<int(int)> Null;
  EXPECT_FALSE(Null);
  EXPECT_TRUE(F);
}

TEST(Table, AlignedOutput) {
  Table T({"name", "value"});
  T.addRow({"alpha", Table::fmt(uint64_t(12))});
  T.addRow({"b", Table::fmt(3.14159, 2)});
  std::ostringstream OS;
  T.print(OS);
  std::string S = OS.str();
  EXPECT_NE(S.find("name"), std::string::npos);
  EXPECT_NE(S.find("alpha"), std::string::npos);
  EXPECT_NE(S.find("3.14"), std::string::npos);
  EXPECT_NE(S.find("---"), std::string::npos);
  EXPECT_EQ(T.numRows(), 3u); // header + 2
}

TEST(Table, PadsShortRows) {
  Table T({"a", "b", "c"});
  T.addRow({"only"});
  std::ostringstream OS;
  T.print(OS);
  EXPECT_NE(OS.str().find("only"), std::string::npos);
}

} // namespace
