//===- bench/bench_autotuner.cpp - The §6.1 autotuning experiment --------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// The §6.1/§6.2 autotuning experiment: enumerate the representation
/// space — decomposition structure × lock placement × striping factor
/// {1, 1024} × containers from {ConcurrentHashMap,
/// ConcurrentSkipListMap, HashMap, TreeMap} — and measure every legal
/// variant on each of the four training workloads, reporting the top
/// performers. The paper generated 448 variants; we print our legal
/// count alongside. The key qualitative result to reproduce: *the best
/// representation varies with the workload*.
///
/// Default runs sample the space (CRS_SAMPLE=N measures every Nth
/// variant); CRS_BENCH_FULL=1 measures all of them.
///
//===----------------------------------------------------------------------===//

#include "BenchConfig.h"
#include "autotune/Autotuner.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace crs;

int main() {
  std::vector<GraphVariant> All = enumerateGraphVariants(1024);
  uint64_t Sample = envU64("CRS_SAMPLE", benchFull() ? 1 : 8);
  std::vector<GraphVariant> Menu;
  for (size_t I = 0; I < All.size(); I += Sample)
    Menu.push_back(All[I]);

  std::printf("=== §6.1 autotuner: %zu legal variants enumerated "
              "(paper: 448 generated); measuring %zu ===\n\n",
              All.size(), Menu.size());

  KeySpace Keys = benchKeySpace();
  HarnessParams Params = benchParams(envU64("CRS_TUNE_THREADS", 2));
  Params.Repeats = 1;
  Params.DiscardRuns = 0;

  std::vector<std::string> BestPerWorkload;
  for (const OpMix &Mix : Fig5Workloads) {
    std::printf("--- training workload %s ---\n", Mix.str().c_str());
    size_t Done = 0;
    auto Results = autotune(Menu, Mix, Keys, Params,
                            [&](const TuneResult &) {
                              if (++Done % 16 == 0) {
                                std::printf(".");
                                std::fflush(stdout);
                              }
                            });
    std::printf("\n");
    Table T({"rank", "variant", "ops/sec"});
    for (size_t I = 0; I < Results.size() && I < 5; ++I)
      T.addRow({std::to_string(I + 1), Results[I].Name,
                Table::fmt(Results[I].OpsPerSec, 0)});
    // ... and the worst, to show the spread the synthesizer navigates.
    T.addRow({"last", Results.back().Name,
              Table::fmt(Results.back().OpsPerSec, 0)});
    T.print(std::cout);
    double Spread = Results.front().OpsPerSec /
                    std::max(1.0, Results.back().OpsPerSec);
    std::printf("best/worst spread: %.0fx\n\n", Spread);
    BestPerWorkload.push_back(Results.front().Name);
  }

  std::printf("--- best representation per workload ---\n");
  Table Best({"workload", "winner"});
  for (size_t I = 0; I < 4; ++I)
    Best.addRow({Fig5Workloads[I].str(), BestPerWorkload[I]});
  Best.print(std::cout);
  std::printf("\nThe §6 takeaway: the winner differs across workloads, so\n"
              "the representation must be easy to change — which is what\n"
              "synthesis from relational specifications provides.\n");
  return 0;
}
