//===- bench/BenchConfig.h - Shared bench configuration ---------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Environment-tunable knobs shared by the figure-reproduction bench
/// binaries, so default runs finish in minutes on a laptop while
/// CRS_BENCH_FULL=1 reproduces the paper-scale configuration
/// (5×10^5 ops per thread, 8 repetitions with the first 3 discarded).
///
//===----------------------------------------------------------------------===//

#ifndef CRS_BENCH_BENCHCONFIG_H
#define CRS_BENCH_BENCHCONFIG_H

#include "workload/Harness.h"

#include <cstdlib>
#include <string>
#include <vector>

namespace crs {

inline uint64_t envU64(const char *Name, uint64_t Default) {
  const char *V = std::getenv(Name);
  return V ? std::strtoull(V, nullptr, 10) : Default;
}

inline bool benchFull() { return envU64("CRS_BENCH_FULL", 0) != 0; }

/// Thread counts for scalability sweeps (CRS_THREADS="1,2,4,8").
inline std::vector<unsigned> benchThreadCounts() {
  if (const char *V = std::getenv("CRS_THREADS")) {
    std::vector<unsigned> Out;
    std::string S = V;
    size_t Pos = 0;
    while (Pos < S.size()) {
      size_t Comma = S.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = S.size();
      Out.push_back(
          static_cast<unsigned>(std::stoul(S.substr(Pos, Comma - Pos))));
      Pos = Comma + 1;
    }
    return Out;
  }
  if (benchFull())
    return {1, 2, 4, 8, 12, 16, 24};
  return {1, 2, 4};
}

/// Harness parameters: paper-scale under CRS_BENCH_FULL, quick sweep by
/// default.
inline HarnessParams benchParams(unsigned Threads) {
  HarnessParams P;
  P.NumThreads = Threads;
  if (benchFull()) {
    P.OpsPerThread = envU64("CRS_OPS", 500000); // §6.2
    P.Repeats = 8;
    P.DiscardRuns = 3;
  } else {
    P.OpsPerThread = envU64("CRS_OPS", 2000);
    P.Repeats = 2;
    P.DiscardRuns = 1;
  }
  return P;
}

inline KeySpace benchKeySpace() {
  KeySpace K;
  K.NumNodes = static_cast<int64_t>(envU64("CRS_NODES", 512));
  return K;
}

} // namespace crs

#endif // CRS_BENCH_BENCHCONFIG_H
