//===- bench/bench_migration.cpp - Throughput across a live migration ---------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// The migration panel: worker threads run a mixed workload while the
/// relation hot-swaps Stick/coarse → Split/striped, and throughput is
/// metered in three windows — before the dual-write flip, during the
/// dual-write + backfill, and after the retirement flip. The "during"
/// window prices the dual-write tax (every mutation is executed twice)
/// and the backfill sharing the machine; "after" shows the win the
/// online tuner migrates for. CRS_BENCH_FULL=1 lengthens the windows;
/// CRS_THREADS picks the sweep.
///
//===----------------------------------------------------------------------===//

#include "BenchConfig.h"
#include "autotune/Autotuner.h"
#include "runtime/PreparedOp.h"
#include "support/Table.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

using namespace crs;
using Clock = std::chrono::steady_clock;

namespace {

struct WindowMeter {
  std::atomic<uint64_t> Ops{0};
};

struct MigrationRow {
  unsigned Threads;
  double Before, During, After; ///< ops/s per window
  double MigrationMs, DualWriteMs;
  uint64_t Backfilled, Mirrored;
};

MigrationRow runOnce(unsigned Threads, const OpMix &Mix, int64_t KeyRange,
                     std::chrono::milliseconds Window) {
  RepresentationConfig From = makeGraphRepresentation(
      {GraphShape::Stick, PlacementSchemeKind::Coarse, 1,
       ContainerKind::HashMap, ContainerKind::TreeMap});
  RepresentationConfig To = makeGraphRepresentation(
      {GraphShape::Split, PlacementSchemeKind::Striped, 1024,
       ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap});
  ConcurrentRelation R(From);
  PreparedRelationTarget Target(R);

  std::atomic<int> Window3{0}; // 0 before, 1 during, 2 after
  std::atomic<bool> Stop{false};
  WindowMeter Meters[3];
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      KeySpace Keys{KeyRange, 1 << 20};
      Xoshiro256 Rng(977 + T);
      while (!Stop.load(std::memory_order_acquire)) {
        runRandomOp(Target, Mix, Keys, Rng);
        Meters[Window3.load(std::memory_order_relaxed)].Ops.fetch_add(
            1, std::memory_order_relaxed);
      }
    });

  struct Hooks : MigrationObserver {
    std::atomic<int> &W;
    Clock::time_point DualStart;
    explicit Hooks(std::atomic<int> &W) : W(W) {}
    void onDualWriteStart() override {
      DualStart = Clock::now();
      W.store(1, std::memory_order_relaxed);
    }
  } Obs(Window3);

  auto T0 = Clock::now();
  std::this_thread::sleep_for(Window);
  auto TMig = Clock::now();
  MigrationResult Res = R.migrateTo(To, &Obs);
  auto TSwap = Clock::now();
  Window3.store(2, std::memory_order_relaxed);
  std::this_thread::sleep_for(Window);
  Stop.store(true, std::memory_order_release);
  for (auto &W : Workers)
    W.join();
  auto TEnd = Clock::now();
  if (!Res.Ok) {
    std::fprintf(stderr, "migration failed: %s\n", Res.Error.c_str());
    std::exit(1);
  }

  auto Secs = [](Clock::time_point A, Clock::time_point B) {
    return std::chrono::duration<double>(B - A).count();
  };
  MigrationRow Row;
  Row.Threads = Threads;
  Row.Before = double(Meters[0].Ops.load()) / Secs(T0, Obs.DualStart);
  Row.During = double(Meters[1].Ops.load()) / Secs(Obs.DualStart, TSwap);
  Row.After = double(Meters[2].Ops.load()) / Secs(TSwap, TEnd);
  Row.MigrationMs = Secs(TMig, TSwap) * 1e3;
  Row.DualWriteMs = Res.DualWriteSeconds * 1e3;
  Row.Backfilled = Res.Backfilled;
  Row.Mirrored = Res.MirroredInserts + Res.MirroredRemoves;
  return Row;
}

} // namespace

int main() {
  const OpMix Mix{35, 35, 20, 10};
  const int64_t KeyRange = static_cast<int64_t>(envU64("CRS_KEYS", 96));
  const auto Window = std::chrono::milliseconds(
      envU64("CRS_MIGRATION_WINDOW_MS", benchFull() ? 3000 : 800));

  std::printf("# Live migration: Stick/coarse -> Split/striped(1024), "
              "mix %s, %lld keys, %lld ms windows\n",
              Mix.str().c_str(), static_cast<long long>(KeyRange),
              static_cast<long long>(Window.count()));
  Table Tbl({"threads", "before ops/s", "during ops/s", "after ops/s",
             "mig ms", "dual ms", "backfilled", "mirrored"});
  for (unsigned Threads : benchThreadCounts()) {
    MigrationRow Row = runOnce(Threads, Mix, KeyRange, Window);
    Tbl.addRow({std::to_string(Row.Threads),
                std::to_string(static_cast<uint64_t>(Row.Before)),
                std::to_string(static_cast<uint64_t>(Row.During)),
                std::to_string(static_cast<uint64_t>(Row.After)),
                std::to_string(static_cast<uint64_t>(Row.MigrationMs)),
                std::to_string(static_cast<uint64_t>(Row.DualWriteMs)),
                std::to_string(Row.Backfilled),
                std::to_string(Row.Mirrored)});
  }
  Tbl.print(std::cout);
  return 0;
}
