//===- bench/bench_fig5_throughput.cpp - Figure 5 reproduction ----------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 5: throughput/scalability curves for the paper's
/// 12 autotuner-selected decompositions plus the handcoded baseline,
/// across the four operation distributions (x-y-z-w = % successors /
/// predecessors / inserts / removes):
///
///   70-0-20-10, 35-35-20-10, 0-0-50-50, 45-45-9-1.
///
/// Output: one table per workload panel, series in rows and thread
/// counts in columns (ops/sec). Defaults are laptop-sized; set
/// CRS_BENCH_FULL=1 (and optionally CRS_THREADS / CRS_OPS) for the
/// paper-scale methodology (5×10^5 ops/thread, mean of the last 5 of 8
/// repetitions).
///
//===----------------------------------------------------------------------===//

#include "BenchConfig.h"
#include "autotune/Autotuner.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>
#include <memory>

using namespace crs;

namespace {

std::unique_ptr<GraphTarget> makeRelationTarget(
    const RepresentationConfig &Config) {
  struct Owning : RelationGraphTarget {
    std::unique_ptr<ConcurrentRelation> Rel;
    explicit Owning(std::unique_ptr<ConcurrentRelation> R)
        : RelationGraphTarget(*R), Rel(std::move(R)) {}
  };
  return std::make_unique<Owning>(
      std::make_unique<ConcurrentRelation>(Config));
}

std::unique_ptr<GraphTarget> makePreparedTarget(
    const RepresentationConfig &Config) {
  struct Owning : PreparedRelationTarget {
    std::unique_ptr<ConcurrentRelation> Rel;
    explicit Owning(std::unique_ptr<ConcurrentRelation> R)
        : PreparedRelationTarget(*R), Rel(std::move(R)) {}
  };
  return std::make_unique<Owning>(
      std::make_unique<ConcurrentRelation>(Config));
}

std::unique_ptr<GraphTarget> makeBatchedTarget(
    const RepresentationConfig &Config) {
  struct Owning : BatchedRelationTarget {
    std::unique_ptr<ConcurrentRelation> Rel;
    explicit Owning(std::unique_ptr<ConcurrentRelation> R)
        : BatchedRelationTarget(*R), Rel(std::move(R)) {}
  };
  return std::make_unique<Owning>(
      std::make_unique<ConcurrentRelation>(Config));
}

std::unique_ptr<GraphTarget> makeShardedTarget(
    const RepresentationConfig &Config, unsigned NumShards) {
  struct Owning : ShardedGraphTarget {
    std::unique_ptr<ShardedRelation> Rel;
    explicit Owning(std::unique_ptr<ShardedRelation> R)
        : ShardedGraphTarget(*R), Rel(std::move(R)) {}
  };
  return std::make_unique<Owning>(
      std::make_unique<ShardedRelation>(Config, NumShards));
}

std::unique_ptr<GraphTarget> makeHandcodedTarget() {
  struct Owning : HandcodedGraphTarget {
    std::unique_ptr<HandcodedGraph> G;
    explicit Owning(std::unique_ptr<HandcodedGraph> Gr)
        : HandcodedGraphTarget(*Gr), G(std::move(Gr)) {}
  };
  return std::make_unique<Owning>(std::make_unique<HandcodedGraph>());
}

} // namespace

int main() {
  std::vector<unsigned> Threads = benchThreadCounts();
  KeySpace Keys = benchKeySpace();
  auto Representations = figure5Representations();

  std::printf("=== Figure 5: throughput/scalability, %zu series x 4 "
              "workloads ===\n",
              Representations.size() + 1);
  std::printf("(ops/sec; threads sweep:");
  for (unsigned T : Threads)
    std::printf(" %u", T);
  std::printf("; %s run)\n\n", benchFull() ? "paper-scale" : "quick");

  for (const OpMix &Mix : Fig5Workloads) {
    std::printf("--- Operation Distribution: %s ---\n", Mix.str().c_str());
    std::vector<std::string> Header{"series"};
    for (unsigned T : Threads)
      Header.push_back(std::to_string(T) + "T");
    // Executor health at the highest thread count: restarts per op
    // (speculation / out-of-order pressure) and plan-cache hit rate
    // (should sit at ~100% once signatures are warm) — the metrics that
    // make executor and plan-cache changes comparable across PRs.
    Header.push_back("rst/op");
    Header.push_back("pc-hit%");
    Table Panel(Header);

    for (auto &[Name, Config] : Representations) {
      std::vector<std::string> Row{Name};
      ThroughputResult Last;
      for (unsigned T : Threads) {
        Last = runThroughput([&] { return makeRelationTarget(Config); }, Mix,
                             Keys, benchParams(T));
        Row.push_back(Table::fmt(Last.OpsPerSec, 0));
      }
      Row.push_back(Table::fmt(Last.RestartsPerOp, 4));
      Row.push_back(Table::fmt(Last.PlanCacheHitRate * 100.0, 2));
      Panel.addRow(Row);
      std::printf(".");
      std::fflush(stdout);
    }

    // The paper's hand-written comparison series.
    std::vector<std::string> Row{"Handcoded"};
    for (unsigned T : Threads) {
      ThroughputResult R = runThroughput([] { return makeHandcodedTarget(); },
                                         Mix, Keys, benchParams(T));
      Row.push_back(Table::fmt(R.OpsPerSec, 0));
    }
    Row.push_back("-");
    Row.push_back("-");
    Panel.addRow(Row);

    std::printf("\n");
    Panel.print(std::cout);
    std::printf("\n");
  }

  // API-mode comparison: one representation (Split 4, the paper's
  // handcoded mirror — falls back to the first series), three client
  // APIs on identical mixes. Legacy pays per-call tuple construction,
  // signature hashing, and result materialization; prepared binds slot
  // frames and streams results; batched additionally groups compatible
  // ops per thread through executeBatch.
  const auto *ApiConfig = &Representations.front();
  for (const auto &R : Representations)
    if (R.first == "Split 4")
      ApiConfig = &R;
  std::printf("=== API-mode comparison (%s): legacy vs prepared vs "
              "batched ===\n\n",
              ApiConfig->first.c_str());
  using TargetFactory = std::function<std::unique_ptr<GraphTarget>()>;
  const RepresentationConfig &AC = ApiConfig->second;
  std::vector<std::pair<std::string, TargetFactory>> Modes = {
      {"legacy", [&] { return makeRelationTarget(AC); }},
      {"prepared", [&] { return makePreparedTarget(AC); }},
      {"batched", [&] { return makeBatchedTarget(AC); }},
  };
  // The API delta is percent-level, so the comparison gets more ops and
  // an extra kept repetition than the quick sweep's defaults.
  auto ApiParams = [&](unsigned T) {
    HarnessParams P = benchParams(T);
    if (!benchFull()) {
      P.OpsPerThread *= 8;
      P.Repeats = 3;
      P.DiscardRuns = 1;
    }
    return P;
  };
  for (const OpMix &Mix : Fig5Workloads) {
    std::printf("--- Operation Distribution: %s ---\n", Mix.str().c_str());
    std::vector<std::string> Header{"api"};
    for (unsigned T : Threads)
      Header.push_back(std::to_string(T) + "T");
    Header.push_back("rst/op");
    Header.push_back("pc-hit%");
    Table Panel(Header);
    for (auto &[Name, Make] : Modes) {
      std::vector<std::string> Row{Name};
      ThroughputResult Last;
      for (unsigned T : Threads) {
        Last = runThroughput(Make, Mix, Keys, ApiParams(T));
        Row.push_back(Table::fmt(Last.OpsPerSec, 0));
      }
      Row.push_back(Table::fmt(Last.RestartsPerOp, 4));
      Row.push_back(Table::fmt(Last.PlanCacheHitRate * 100.0, 2));
      Panel.addRow(Row);
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf("\n");
    Panel.print(std::cout);
    std::printf("\n");
  }

  // Sharded scaling: hash-partition one contention-bound representation
  // (the coarse stick, Figure 5's worst scaler) across 1/2/4
  // ShardedRelation shards. On the mutation-heavy mix every operation
  // routes to a single shard, so shards multiply the supply of
  // independent lock roots; the read-heavy mix keeps 45% fan-out
  // predecessor queries, which pay one execution per shard. The 1-shard
  // row measures pure routing overhead against the unsharded prepared
  // target.
  RepresentationConfig ShardBase = makeGraphRepresentation(
      {GraphShape::Stick, PlacementSchemeKind::Coarse, 1,
       ContainerKind::HashMap, ContainerKind::TreeMap});
  const OpMix ShardMixes[] = {{45, 45, 9, 1}, {0, 0, 50, 50}};
  std::printf("=== Sharded scaling (%s): 1/2/4 shards ===\n\n",
              ShardBase.Name.c_str());
  for (const OpMix &Mix : ShardMixes) {
    std::printf("--- Operation Distribution: %s ---\n", Mix.str().c_str());
    std::vector<std::string> Header{"series"};
    for (unsigned T : Threads)
      Header.push_back(std::to_string(T) + "T");
    Header.push_back("rst/op");
    Header.push_back("pc-hit%");
    Table Panel(Header);
    std::vector<std::pair<std::string, TargetFactory>> Series = {
        {"unsharded", [&] { return makePreparedTarget(ShardBase); }},
        {"1 shard", [&] { return makeShardedTarget(ShardBase, 1); }},
        {"2 shards", [&] { return makeShardedTarget(ShardBase, 2); }},
        {"4 shards", [&] { return makeShardedTarget(ShardBase, 4); }},
    };
    for (auto &[Name, Make] : Series) {
      std::vector<std::string> Row{Name};
      ThroughputResult Last;
      for (unsigned T : Threads) {
        Last = runThroughput(Make, Mix, Keys, ApiParams(T));
        Row.push_back(Table::fmt(Last.OpsPerSec, 0));
      }
      Row.push_back(Table::fmt(Last.RestartsPerOp, 4));
      Row.push_back(Table::fmt(Last.PlanCacheHitRate * 100.0, 2));
      Panel.addRow(Row);
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf("\n");
    Panel.print(std::cout);
    std::printf("\n");
  }

  std::printf(
      "Reading guide (paper §6.2): stick series hold up on the two\n"
      "successor-only workloads but collapse when predecessors appear\n"
      "(70-0-20-10 / 0-0-50-50 vs 35-35-20-10 / 45-45-9-1); coarse\n"
      "variants (Stick 1, Split 1, Diamond 0) scale worst; split beats\n"
      "diamond under concurrency; Handcoded tracks Split 4.\n"
      "Sharded panel: the mutation-heavy mix is all single-shard ops, so\n"
      "N shards multiply independent lock roots — the scaling shows on\n"
      "multicore hosts (threads > cores timeshare and locks stop\n"
      "contending, so a 1-core container can only show the no-regression\n"
      "story: 1 shard ≈ unsharded, within noise).\n");
  return 0;
}
