//===- bench/bench_fig5_throughput.cpp - Figure 5 reproduction ----------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 5: throughput/scalability curves for the paper's
/// 12 autotuner-selected decompositions plus the handcoded baseline,
/// across the four operation distributions (x-y-z-w = % successors /
/// predecessors / inserts / removes):
///
///   70-0-20-10, 35-35-20-10, 0-0-50-50, 45-45-9-1.
///
/// Output: one table per workload panel, series in rows and thread
/// counts in columns (ops/sec). Defaults are laptop-sized; set
/// CRS_BENCH_FULL=1 (and optionally CRS_THREADS / CRS_OPS) for the
/// paper-scale methodology (5×10^5 ops/thread, mean of the last 5 of 8
/// repetitions).
///
//===----------------------------------------------------------------------===//

#include "BenchConfig.h"
#include "BenchJson.h"
#include "autotune/Autotuner.h"
#include "obs/Exporter.h"
#include "support/Table.h"
#include "txn/Transaction.h"
#include "wal/Wal.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <unistd.h>

using namespace crs;

namespace {

std::unique_ptr<GraphTarget> makeRelationTarget(
    const RepresentationConfig &Config) {
  struct Owning : RelationGraphTarget {
    std::unique_ptr<ConcurrentRelation> Rel;
    explicit Owning(std::unique_ptr<ConcurrentRelation> R)
        : RelationGraphTarget(*R), Rel(std::move(R)) {}
  };
  return std::make_unique<Owning>(
      std::make_unique<ConcurrentRelation>(Config));
}

std::unique_ptr<GraphTarget> makePreparedTarget(
    const RepresentationConfig &Config) {
  struct Owning : PreparedRelationTarget {
    std::unique_ptr<ConcurrentRelation> Rel;
    explicit Owning(std::unique_ptr<ConcurrentRelation> R)
        : PreparedRelationTarget(*R), Rel(std::move(R)) {}
  };
  return std::make_unique<Owning>(
      std::make_unique<ConcurrentRelation>(Config));
}

/// The prepared target with the epoch-protected read fast path switched
/// off, so eligible queries take the placement locks they would have
/// taken before the fast path existed — the control series for the
/// fast-vs-locked panel.
std::unique_ptr<GraphTarget> makeLockedPreparedTarget(
    const RepresentationConfig &Config) {
  auto Rel = std::make_unique<ConcurrentRelation>(Config);
  Rel->setFastReads(false);
  struct Owning : PreparedRelationTarget {
    std::unique_ptr<ConcurrentRelation> Rel;
    explicit Owning(std::unique_ptr<ConcurrentRelation> R)
        : PreparedRelationTarget(*R), Rel(std::move(R)) {}
  };
  return std::make_unique<Owning>(std::move(Rel));
}

std::unique_ptr<GraphTarget> makeBatchedTarget(
    const RepresentationConfig &Config) {
  struct Owning : BatchedRelationTarget {
    std::unique_ptr<ConcurrentRelation> Rel;
    explicit Owning(std::unique_ptr<ConcurrentRelation> R)
        : BatchedRelationTarget(*R), Rel(std::move(R)) {}
  };
  return std::make_unique<Owning>(
      std::make_unique<ConcurrentRelation>(Config));
}

/// The prepared target with a group-commit WAL attached: every
/// committed mutation pays the commit-path append (serialize + memcpy
/// under the partition mutex); the flusher thread does the I/O. The
/// durability panel's series differ only in FsyncMode — the no-wal
/// baseline bounds the total logging overhead, batched vs sync shows
/// what durability-on-ack costs over bounded-lag durability.
std::unique_ptr<GraphTarget> makeWalTarget(const RepresentationConfig &Config,
                                           FsyncMode Mode) {
  struct Owning : PreparedRelationTarget {
    std::unique_ptr<ConcurrentRelation> Rel;
    std::unique_ptr<WriteAheadLog> Log;
    std::string Dir;
    Owning(std::unique_ptr<ConcurrentRelation> R,
           std::unique_ptr<WriteAheadLog> L, std::string D)
        : PreparedRelationTarget(*R), Rel(std::move(R)), Log(std::move(L)),
          Dir(std::move(D)) {
      Rel->attachWal(*Log);
    }
    ~Owning() override {
      Rel->detachWal();
      Log.reset(); // final flush + fd close before the files go
      ::unlink(walPartitionPath(Dir, 0).c_str());
      ::rmdir(Dir.c_str());
    }
  };
  char Buf[] = "/tmp/crs_bench_wal_XXXXXX";
  char *D = ::mkdtemp(Buf);
  WriteAheadLog::Options O;
  O.Dir = D ? D : "/tmp/crs_bench_wal";
  O.Fsync = Mode;
  std::string Err;
  auto Log = WriteAheadLog::open(O, &Err);
  if (!Log) {
    std::fprintf(stderr, "wal open failed: %s\n", Err.c_str());
    std::abort();
  }
  return std::make_unique<Owning>(
      std::make_unique<ConcurrentRelation>(Config), std::move(Log), O.Dir);
}

/// The prepared target with the metrics registry attached — the
/// obs_overhead panel's "on" series. Attaching registers the snapshot
/// callbacks and arms the sampled-latency hook on every prepared
/// execution (default 1-in-64 period); "off" is the identical target
/// with no registry, where the hook is one null-pointer load. The
/// process-global registry is used so an end-of-run CRS_METRICS_JSON
/// dump carries the bench's own counters and events.
std::unique_ptr<GraphTarget> makeObsTarget(const RepresentationConfig &Config,
                                           bool Metrics) {
  struct Owning : PreparedRelationTarget {
    std::unique_ptr<ConcurrentRelation> Rel;
    Owning(std::unique_ptr<ConcurrentRelation> R, bool Metrics)
        : PreparedRelationTarget(*R), Rel(std::move(R)) {
      if (Metrics)
        Rel->attachMetrics(obs::MetricsRegistry::global(), "fig5");
    }
  };
  return std::make_unique<Owning>(std::make_unique<ConcurrentRelation>(Config),
                                  Metrics);
}

std::unique_ptr<GraphTarget> makeShardedTarget(
    const RepresentationConfig &Config, unsigned NumShards) {
  struct Owning : ShardedGraphTarget {
    std::unique_ptr<ShardedRelation> Rel;
    explicit Owning(std::unique_ptr<ShardedRelation> R)
        : ShardedGraphTarget(*R), Rel(std::move(R)) {}
  };
  return std::make_unique<Owning>(
      std::make_unique<ShardedRelation>(Config, NumShards));
}

/// GraphTarget running every operation inside transaction scopes of
/// \p TxnSize ops (src/txn): per-thread op buffers flush as one
/// commit-or-retry scope, so the panel measures what scope retention
/// costs over bare prepared execution — at size 1, the pure per-scope
/// overhead (snapshot slot, undo/mirror bookkeeping, commit stamp); at
/// larger sizes, the amortization and the added lock-hold
/// serialization. Reads run as MVCC snapshot query() by default (no
/// locks); \p ForUpdate routes them through queryForUpdate instead —
/// the PR 5 exclusive-locking read — so the series pair prices what
/// snapshot isolation saves on read-heavy mixes. Operation outcomes
/// are deferred to the flush, like the batched target.
class TxnRelationTarget : public GraphTarget {
public:
  TxnRelationTarget(ConcurrentRelation &R, unsigned TxnSize,
                    bool ForUpdate = false)
      : Rel(&R), TxnSize(TxnSize), ForUpdate(ForUpdate) {
    const RelationSpec &Spec = R.spec();
    ColumnSet Key = Spec.cols({"src", "dst"});
    Succ = R.prepareQuery(Spec.cols({"src"}), Spec.cols({"dst", "weight"}));
    Pred = R.prepareQuery(Spec.cols({"dst"}), Spec.cols({"src", "weight"}));
    Ins = R.prepareInsert(Key);
    Rem = R.prepareRemove(Key);
  }

  void findSuccessors(int64_t Src) override { enqueue({0, Src, 0, 0}); }
  void findPredecessors(int64_t Dst) override { enqueue({1, 0, Dst, 0}); }
  bool insertEdge(int64_t Src, int64_t Dst, int64_t Weight) override {
    enqueue({2, Src, Dst, Weight});
    return true; // deferred to the flush, like the batched target
  }
  bool removeEdge(int64_t Src, int64_t Dst) override {
    enqueue({3, Src, Dst, 0});
    return true;
  }
  void threadFinish() override { flush(); }
  size_t size() const override { return Rel->size(); }
  uint64_t restarts() const override { return Rel->restarts(); }
  uint64_t planCacheMisses() const override {
    return Rel->planCacheMisses();
  }

private:
  struct Pending {
    unsigned Kind; // 0 succ / 1 pred / 2 insert / 3 remove
    int64_t Src, Dst, Weight;
  };
  /// Same per-thread buffer machinery as BatchedRelationTarget (see
  /// detail::PendingThreadBuffer for the id-keyed aliasing guard).
  static thread_local detail::PendingThreadBuffer<Pending> Buf;
  const uint64_t TargetId = detail::nextPendingTargetId();

  void enqueue(Pending P) {
    std::vector<Pending> &Ops = Buf.claim(TargetId);
    Ops.push_back(P);
    if (Ops.size() >= TxnSize)
      flush();
  }

  void flush() {
    if (!Buf.owns(TargetId) || Buf.Ops.empty())
      return;
    runTransaction(*Rel, [&](Transaction &T) {
      for (const Pending &P : Buf.Ops) {
        bool Ok = true;
        switch (P.Kind) {
        case 0:
          Ok = ForUpdate ? T.queryForUpdate(Succ, {Value::ofInt(P.Src)})
                         : T.query(Succ, {Value::ofInt(P.Src)});
          break;
        case 1:
          Ok = ForUpdate ? T.queryForUpdate(Pred, {Value::ofInt(P.Dst)})
                         : T.query(Pred, {Value::ofInt(P.Dst)});
          break;
        case 2:
          Ok = T.insert(Ins, {Value::ofInt(P.Src), Value::ofInt(P.Dst),
                              Value::ofInt(P.Weight)});
          break;
        default:
          Ok = T.remove(Rem, {Value::ofInt(P.Src), Value::ofInt(P.Dst)});
          break;
        }
        if (!Ok)
          return true; // died: rolled back, runTransaction retries
      }
      return true;
    });
    Buf.Ops.clear();
  }

  ConcurrentRelation *Rel;
  unsigned TxnSize;
  bool ForUpdate;
  PreparedQuery Succ, Pred;
  PreparedInsert Ins;
  PreparedRemove Rem;
};

thread_local detail::PendingThreadBuffer<TxnRelationTarget::Pending>
    TxnRelationTarget::Buf;

std::unique_ptr<GraphTarget> makeTxnTarget(const RepresentationConfig &Config,
                                           unsigned TxnSize,
                                           bool ForUpdate = false) {
  struct Owning : TxnRelationTarget {
    std::unique_ptr<ConcurrentRelation> Rel;
    Owning(std::unique_ptr<ConcurrentRelation> R, unsigned TxnSize,
           bool ForUpdate)
        : TxnRelationTarget(*R, TxnSize, ForUpdate), Rel(std::move(R)) {}
  };
  return std::make_unique<Owning>(std::make_unique<ConcurrentRelation>(Config),
                                  TxnSize, ForUpdate);
}

std::unique_ptr<GraphTarget> makeHandcodedTarget() {
  struct Owning : HandcodedGraphTarget {
    std::unique_ptr<HandcodedGraph> G;
    explicit Owning(std::unique_ptr<HandcodedGraph> Gr)
        : HandcodedGraphTarget(*Gr), G(std::move(Gr)) {}
  };
  return std::make_unique<Owning>(std::make_unique<HandcodedGraph>());
}

} // namespace

int main() {
  std::vector<unsigned> Threads = benchThreadCounts();
  KeySpace Keys = benchKeySpace();
  auto Representations = figure5Representations();
  // Machine-readable sidecar (CRS_BENCH_JSON=<path>): every panel below
  // also lands in the JSON document tools/bench_compare.py consumes.
  BenchJsonWriter Json;

  std::printf("=== Figure 5: throughput/scalability, %zu series x 4 "
              "workloads ===\n",
              Representations.size() + 1);
  std::printf("(ops/sec; threads sweep:");
  for (unsigned T : Threads)
    std::printf(" %u", T);
  std::printf("; %s run)\n\n", benchFull() ? "paper-scale" : "quick");

  for (const OpMix &Mix : Fig5Workloads) {
    std::printf("--- Operation Distribution: %s ---\n", Mix.str().c_str());
    std::vector<std::string> Header{"series"};
    for (unsigned T : Threads)
      Header.push_back(std::to_string(T) + "T");
    // Executor health at the highest thread count: restarts per op
    // (speculation / out-of-order pressure) and plan-cache hit rate
    // (should sit at ~100% once signatures are warm) — the metrics that
    // make executor and plan-cache changes comparable across PRs.
    Header.push_back("rst/op");
    Header.push_back("pc-hit%");
    Table Panel(Header);

    Json.beginPanel("figure5", Mix.str());
    for (auto &[Name, Config] : Representations) {
      std::vector<std::string> Row{Name};
      std::vector<double> Ops;
      ThroughputResult Last;
      for (unsigned T : Threads) {
        Last = runThroughput([&] { return makeRelationTarget(Config); }, Mix,
                             Keys, benchParams(T));
        Row.push_back(Table::fmt(Last.OpsPerSec, 0));
        Ops.push_back(Last.OpsPerSec);
      }
      Row.push_back(Table::fmt(Last.RestartsPerOp, 4));
      Row.push_back(Table::fmt(Last.PlanCacheHitRate * 100.0, 2));
      Panel.addRow(Row);
      Json.addSeries(Name, Ops, Last.RestartsPerOp, Last.PlanCacheHitRate,
                     static_cast<int64_t>(Last.PlanCacheHits),
                     static_cast<int64_t>(Last.PlanCacheMisses));
      std::printf(".");
      std::fflush(stdout);
    }

    // The paper's hand-written comparison series.
    std::vector<std::string> Row{"Handcoded"};
    std::vector<double> HandOps;
    for (unsigned T : Threads) {
      ThroughputResult R = runThroughput([] { return makeHandcodedTarget(); },
                                         Mix, Keys, benchParams(T));
      Row.push_back(Table::fmt(R.OpsPerSec, 0));
      HandOps.push_back(R.OpsPerSec);
    }
    Row.push_back("-");
    Row.push_back("-");
    Panel.addRow(Row);
    Json.addSeries("Handcoded", HandOps);

    std::printf("\n");
    Panel.print(std::cout);
    std::printf("\n");
  }

  // API-mode comparison: one representation (Split 4, the paper's
  // handcoded mirror — falls back to the first series), three client
  // APIs on identical mixes. Legacy pays per-call tuple construction,
  // signature hashing, and result materialization; prepared binds slot
  // frames and streams results; batched additionally groups compatible
  // ops per thread through executeBatch.
  const auto *ApiConfig = &Representations.front();
  for (const auto &R : Representations)
    if (R.first == "Split 4")
      ApiConfig = &R;
  std::printf("=== API-mode comparison (%s): legacy vs prepared vs "
              "batched ===\n\n",
              ApiConfig->first.c_str());
  using TargetFactory = std::function<std::unique_ptr<GraphTarget>()>;
  const RepresentationConfig &AC = ApiConfig->second;
  std::vector<std::pair<std::string, TargetFactory>> Modes = {
      {"legacy", [&] { return makeRelationTarget(AC); }},
      {"prepared", [&] { return makePreparedTarget(AC); }},
      {"batched", [&] { return makeBatchedTarget(AC); }},
  };
  // The API delta is percent-level, so the comparison gets more ops and
  // an extra kept repetition than the quick sweep's defaults.
  auto ApiParams = [&](unsigned T) {
    HarnessParams P = benchParams(T);
    if (!benchFull()) {
      P.OpsPerThread *= 8;
      P.Repeats = 3;
      P.DiscardRuns = 1;
    }
    return P;
  };
  // Shared row loop for the named-series panels below (each caller has
  // already opened the matching JSON panel).
  auto runSeriesPanel =
      [&](Table &Panel,
          const std::vector<std::pair<std::string, TargetFactory>> &Series,
          const OpMix &Mix) {
        for (auto &[Name, Make] : Series) {
          std::vector<std::string> Row{Name};
          std::vector<double> Ops;
          ThroughputResult Last;
          for (unsigned T : Threads) {
            Last = runThroughput(Make, Mix, Keys, ApiParams(T));
            Row.push_back(Table::fmt(Last.OpsPerSec, 0));
            Ops.push_back(Last.OpsPerSec);
          }
          Row.push_back(Table::fmt(Last.RestartsPerOp, 4));
          Row.push_back(Table::fmt(Last.PlanCacheHitRate * 100.0, 2));
          Panel.addRow(Row);
          Json.addSeries(Name, Ops, Last.RestartsPerOp,
                         Last.PlanCacheHitRate,
                         static_cast<int64_t>(Last.PlanCacheHits),
                         static_cast<int64_t>(Last.PlanCacheMisses));
          std::printf(".");
          std::fflush(stdout);
        }
      };
  for (const OpMix &Mix : Fig5Workloads) {
    std::printf("--- Operation Distribution: %s ---\n", Mix.str().c_str());
    std::vector<std::string> Header{"api"};
    for (unsigned T : Threads)
      Header.push_back(std::to_string(T) + "T");
    Header.push_back("rst/op");
    Header.push_back("pc-hit%");
    Table Panel(Header);
    Json.beginPanel("api_modes", Mix.str());
    runSeriesPanel(Panel, Modes, Mix);
    std::printf("\n");
    Panel.print(std::cout);
    std::printf("\n");
  }

  // Read fast path: eligible prepared queries run under an epoch guard
  // with zero placement-lock acquisitions (docs/ARCHITECTURE.md, "The
  // read fast path"). Eligibility needs every traversed container to be
  // concurrency-safe, so the panel gets an all-concurrent split (the
  // Figure 5 variants keep a non-concurrent inner level); `locked` is
  // the identical representation with setFastReads(false) — the pre-
  // fast-path behavior. The gap is the price of shared placement locks
  // on the read path; it widens with threads and with read share.
  RepresentationConfig FastBase = makeGraphRepresentation(
      {GraphShape::Split, PlacementSchemeKind::Striped, 1024,
       ContainerKind::ConcurrentHashMap, ContainerKind::ConcurrentSkipListMap});
  std::printf("=== Read fast path (%s): epoch-protected vs locked ===\n\n",
              FastBase.Name.c_str());
  for (const OpMix &Mix : Fig5Workloads) {
    std::printf("--- Operation Distribution: %s ---\n", Mix.str().c_str());
    std::vector<std::string> Header{"series"};
    for (unsigned T : Threads)
      Header.push_back(std::to_string(T) + "T");
    Header.push_back("rst/op");
    Header.push_back("pc-hit%");
    Table Panel(Header);
    std::vector<std::pair<std::string, TargetFactory>> Series = {
        {"fast (epoch)", [&] { return makePreparedTarget(FastBase); }},
        {"locked", [&] { return makeLockedPreparedTarget(FastBase); }},
    };
    Json.beginPanel("read_fastpath", Mix.str());
    runSeriesPanel(Panel, Series, Mix);
    std::printf("\n");
    Panel.print(std::cout);
    std::printf("\n");
  }

  // Observability tax: the identical prepared target with the metrics
  // registry attached (snapshot callbacks registered, sampled latency
  // armed at the default 1-in-64 period, fast reads on) vs detached.
  // The acceptance budget is a 3% throughput tax on the read-fast-path
  // mix and the mutation-heavy mix — the "off" series pays one
  // null-pointer load per op, the "on" series a thread-local countdown
  // plus one clock read and histogram fetch_add per 64 ops.
  const OpMix ObsMixes[] = {{70, 0, 20, 10}, {0, 0, 50, 50}};
  std::printf("=== Observability overhead (%s): metrics on vs off ===\n\n",
              FastBase.Name.c_str());
  for (const OpMix &Mix : ObsMixes) {
    std::printf("--- Operation Distribution: %s ---\n", Mix.str().c_str());
    std::vector<std::string> Header{"series"};
    for (unsigned T : Threads)
      Header.push_back(std::to_string(T) + "T");
    Header.push_back("rst/op");
    Header.push_back("pc-hit%");
    Table Panel(Header);
    std::vector<std::pair<std::string, TargetFactory>> Series = {
        {"metrics off", [&] { return makeObsTarget(FastBase, false); }},
        {"metrics on", [&] { return makeObsTarget(FastBase, true); }},
    };
    Json.beginPanel("obs_overhead", Mix.str());
    runSeriesPanel(Panel, Series, Mix);
    std::printf("\n");
    Panel.print(std::cout);
    std::printf("\n");
  }

  // Sharded scaling: hash-partition one contention-bound representation
  // (the coarse stick, Figure 5's worst scaler) across 1/2/4
  // ShardedRelation shards. On the mutation-heavy mix every operation
  // routes to a single shard, so shards multiply the supply of
  // independent lock roots; the read-heavy mix keeps 45% fan-out
  // predecessor queries, which pay one execution per shard. The 1-shard
  // row measures pure routing overhead against the unsharded prepared
  // target.
  RepresentationConfig ShardBase = makeGraphRepresentation(
      {GraphShape::Stick, PlacementSchemeKind::Coarse, 1,
       ContainerKind::HashMap, ContainerKind::TreeMap});
  const OpMix ShardMixes[] = {{45, 45, 9, 1}, {0, 0, 50, 50}};
  std::printf("=== Sharded scaling (%s): 1/2/4 shards ===\n\n",
              ShardBase.Name.c_str());
  for (const OpMix &Mix : ShardMixes) {
    std::printf("--- Operation Distribution: %s ---\n", Mix.str().c_str());
    std::vector<std::string> Header{"series"};
    for (unsigned T : Threads)
      Header.push_back(std::to_string(T) + "T");
    Header.push_back("rst/op");
    Header.push_back("pc-hit%");
    Table Panel(Header);
    std::vector<std::pair<std::string, TargetFactory>> Series = {
        {"unsharded", [&] { return makePreparedTarget(ShardBase); }},
        {"1 shard", [&] { return makeShardedTarget(ShardBase, 1); }},
        {"2 shards", [&] { return makeShardedTarget(ShardBase, 2); }},
        {"4 shards", [&] { return makeShardedTarget(ShardBase, 4); }},
    };
    Json.beginPanel("sharded", Mix.str());
    runSeriesPanel(Panel, Series, Mix);
    std::printf("\n");
    Panel.print(std::cout);
    std::printf("\n");
  }

  // Transaction-size panel: scope retention cost tracked from day one.
  // Bare prepared ops are the floor; txn x1 wraps each op in its own
  // commit-or-retry scope (pure per-scope overhead — the acceptance
  // budget is 10% at one thread); x2 and x8 amortize the scope overhead
  // over more ops while holding locks longer. Transactional reads are
  // MVCC snapshot reads (zero lock acquisitions); the `for-upd` series
  // run the same scopes through queryForUpdate — the exclusive-locking
  // read MVCC replaced — so the two read strategies are priced side by
  // side on the read-heavy mix. The mix's reads are successor queries
  // (bind src only, not a full key): snapshot reads on non-key bindings
  // are served by the version store's secondary chain directories,
  // O(matching chains) per read like the compiled plans underneath
  // (txn_mvcc_test asserts the visit counts; the txn_nonkey panel below
  // prices the two read strategies head to head).
  const auto *TxnConfig = ApiConfig;
  std::printf("=== Transaction scopes (%s): bare prepared vs 1/2/8-op "
              "txns, snapshot vs for-update reads ===\n\n",
              TxnConfig->first.c_str());
  const RepresentationConfig &TC = TxnConfig->second;
  for (const OpMix &Mix : ShardMixes) {
    std::printf("--- Operation Distribution: %s ---\n", Mix.str().c_str());
    std::vector<std::string> Header{"series"};
    for (unsigned T : Threads)
      Header.push_back(std::to_string(T) + "T");
    Header.push_back("rst/op");
    Header.push_back("pc-hit%");
    Table Panel(Header);
    std::vector<std::pair<std::string, TargetFactory>> Series = {
        {"prepared (bare)", [&] { return makePreparedTarget(TC); }},
        {"txn x1", [&] { return makeTxnTarget(TC, 1); }},
        {"txn x2", [&] { return makeTxnTarget(TC, 2); }},
        {"txn x8", [&] { return makeTxnTarget(TC, 8); }},
        {"txn x1 for-upd", [&] { return makeTxnTarget(TC, 1, true); }},
        {"txn x8 for-upd", [&] { return makeTxnTarget(TC, 8, true); }},
    };
    Json.beginPanel("txn", Mix.str());
    runSeriesPanel(Panel, Series, Mix);
    std::printf("\n");
    Panel.print(std::cout);
    std::printf("\n");
  }

  // Non-key snapshot-read panel: a successor-dominated mix pits the
  // two transactional read strategies directly. Both series bind src
  // only — never a full key — so every read takes the version store's
  // {src} chain directory (snapshot) or the compiled plan under
  // exclusive locks (for-update). The acceptance bar: snapshot
  // successor throughput ≥ 50% of for-update successor in Release —
  // the directory walk plus visibility checks may cost up to 2× the
  // locked compiled read, but never the old O(live tuples) scan cliff.
  const OpMix NonKeyMix = {90, 0, 9, 1};
  std::printf("=== Non-key snapshot reads (%s): directory-served snapshot "
              "vs for-update successor queries ===\n\n",
              TxnConfig->first.c_str());
  {
    std::printf("--- Operation Distribution: %s ---\n",
                NonKeyMix.str().c_str());
    std::vector<std::string> Header{"series"};
    for (unsigned T : Threads)
      Header.push_back(std::to_string(T) + "T");
    Header.push_back("rst/op");
    Header.push_back("pc-hit%");
    Table Panel(Header);
    std::vector<std::pair<std::string, TargetFactory>> Series = {
        {"snapshot succ x8", [&] { return makeTxnTarget(TC, 8); }},
        {"for-upd succ x8", [&] { return makeTxnTarget(TC, 8, true); }},
    };
    Json.beginPanel("txn_nonkey", NonKeyMix.str());
    runSeriesPanel(Panel, Series, NonKeyMix);
    std::printf("\n");
    Panel.print(std::cout);
    std::printf("\n");
  }

  // Durability panel: the same prepared target with a group-commit WAL
  // attached. `no wal` is the floor; `wal batched` (the default mode)
  // must stay within the 15% acceptance budget on the mutation-heavy
  // mix — the commit path only serializes into the partition tail, the
  // flusher thread does the I/O; `wal sync` additionally parks each
  // committing thread until an fsync covers its record (group commit:
  // one fsync per park window, shared by every parked scope).
  const RepresentationConfig &WC = ApiConfig->second;
  std::printf("=== Durability (%s): no wal vs group-commit WAL ===\n\n",
              ApiConfig->first.c_str());
  for (const OpMix &Mix : ShardMixes) {
    std::printf("--- Operation Distribution: %s ---\n", Mix.str().c_str());
    std::vector<std::string> Header{"series"};
    for (unsigned T : Threads)
      Header.push_back(std::to_string(T) + "T");
    Header.push_back("rst/op");
    Header.push_back("pc-hit%");
    Table Panel(Header);
    std::vector<std::pair<std::string, TargetFactory>> Series = {
        {"no wal", [&] { return makePreparedTarget(WC); }},
        {"wal batched",
         [&] { return makeWalTarget(WC, FsyncMode::Batched); }},
        {"wal sync", [&] { return makeWalTarget(WC, FsyncMode::Sync); }},
    };
    Json.beginPanel("wal", Mix.str());
    runSeriesPanel(Panel, Series, Mix);
    std::printf("\n");
    Panel.print(std::cout);
    std::printf("\n");
  }

  std::printf(
      "Reading guide (paper §6.2): stick series hold up on the two\n"
      "successor-only workloads but collapse when predecessors appear\n"
      "(70-0-20-10 / 0-0-50-50 vs 35-35-20-10 / 45-45-9-1); coarse\n"
      "variants (Stick 1, Split 1, Diamond 0) scale worst; split beats\n"
      "diamond under concurrency; Handcoded tracks Split 4.\n"
      "Sharded panel: the mutation-heavy mix is all single-shard ops, so\n"
      "N shards multiply independent lock roots — the scaling shows on\n"
      "multicore hosts (threads > cores timeshare and locks stop\n"
      "contending, so a 1-core container can only show the no-regression\n"
      "story: 1 shard ≈ unsharded, within noise).\n"
      "Txn panel: txn x1 vs bare prepared is the per-scope overhead\n"
      "budget (≤10%% at 1T); larger scopes amortize it but hold write\n"
      "locks longer. Transactional reads are MVCC snapshot reads — zero\n"
      "lock acquisitions, never aborted. The mix's successor reads bind\n"
      "src only (not a full key) and are served by the version store's\n"
      "secondary chain directories, O(matching chains) per read;\n"
      "full-key snapshot point reads beat bare prepared (txn_mvcc_test\n"
      "gates that ratio).\n"
      "Txn_nonkey panel: directory-served snapshot successors vs the\n"
      "same scopes through for-update reads — the snapshot series must\n"
      "hold ≥50%% of for-update throughput (directory walk + visibility\n"
      "checks vs locked compiled read), with zero locks and no aborts.\n"
      "Fast-path panel: the epoch series drops every placement-lock\n"
      "acquisition from eligible queries; expect it to pull ahead of\n"
      "locked as threads and read share grow, and to stay within noise\n"
      "on the mutation-heavy mix (writers still lock).\n"
      "Durability panel: `wal batched` vs `no wal` is the logging\n"
      "overhead budget (≤15%% on 0-0-50-50 at 4T — the commit path\n"
      "never does I/O); `wal sync` adds the group-commit park, bounded\n"
      "by the batching window per committing scope.\n"
      "Obs panel: `metrics on` attaches the registry (callbacks + 1/64\n"
      "sampled latency); the budget is a 3%% tax vs `metrics off` on\n"
      "both mixes. CRS_METRICS_JSON=<path> dumps the registry at exit.\n");
  // CRS_METRICS_JSON=<path>: dump the process-global registry — the obs
  // panel's counters, latency histograms, and event rings — as a
  // crs-metrics/1 document (tools/metrics_summary.py renders it).
  obs::exportIfRequested(obs::MetricsRegistry::global());
  return Json.write(Threads, benchFull() ? "full" : "quick") ? 0 : 1;
}
