//===- bench/bench_planner.cpp - Query planner micro-benchmarks ---------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Planner costs: how long plan enumeration + selection takes per
/// operation signature (plans are compiled once per signature and
/// cached, so this is a representation-construction cost, not a
/// per-operation cost), how many candidates are enumerated, and how far
/// the cost model's pick is from the cheapest candidate (sanity: it IS
/// the cheapest; the interesting column is the best/worst spread the
/// planner navigates).
///
//===----------------------------------------------------------------------===//

#include "decomp/Shapes.h"
#include "lockplace/PlacementSchemes.h"
#include "plan/Planner.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace crs;

namespace {

struct PlannerCase {
  const char *Name;
  Decomposition D;
  LockPlacement P;
};

std::vector<PlannerCase> plannerCases() {
  static RelationSpec GraphSpec = makeGraphSpec();
  static RelationSpec DSpec = makeDCacheSpec();
  std::vector<PlannerCase> Out;
  for (GraphShape S :
       {GraphShape::Stick, GraphShape::Split, GraphShape::Diamond}) {
    Decomposition D = makeGraphDecomposition(
        GraphSpec, S,
        {ContainerKind::ConcurrentHashMap, ContainerKind::HashMap});
    Out.push_back({graphShapeName(S), D, makeStripedPlacement(D, 1024)});
  }
  Decomposition DC = makeDCacheDecomposition(DSpec);
  Out.push_back({"dcache", DC, makeFinePlacement(DC)});
  return Out;
}

void BM_PlanQuery(benchmark::State &State) {
  auto Cases = plannerCases();
  const PlannerCase &C = Cases[State.range(0)];
  const RelationSpec &Spec = C.D.spec();
  QueryPlanner Planner(C.D, C.P);
  ColumnSet DomS = ColumnSet::of(0);
  ColumnSet Out = Spec.allColumns() - DomS;
  for (auto _ : State) {
    Plan P = Planner.planQuery(DomS, Out);
    benchmark::DoNotOptimize(P);
  }
  State.SetLabel(C.Name);
  State.counters["candidates"] = static_cast<double>(
      Planner.enumerateQueryPlans(DomS, Out).size());
}

void BM_PlanRemoveLocate(benchmark::State &State) {
  auto Cases = plannerCases();
  const PlannerCase &C = Cases[State.range(0)];
  QueryPlanner Planner(C.D, C.P);
  std::vector<ColumnSet> Keys = C.D.spec().minimalKeys();
  for (auto _ : State) {
    Plan P = Planner.planRemoveLocate(Keys.front());
    benchmark::DoNotOptimize(P);
  }
  State.SetLabel(C.Name);
}

void BM_EnumerateAllPlans(benchmark::State &State) {
  auto Cases = plannerCases();
  const PlannerCase &C = Cases[State.range(0)];
  QueryPlanner Planner(C.D, C.P);
  ColumnSet All = C.D.spec().allColumns();
  for (auto _ : State) {
    auto Plans = Planner.enumerateQueryPlans(ColumnSet::empty(), All);
    benchmark::DoNotOptimize(Plans);
  }
  State.SetLabel(C.Name);
}

BENCHMARK(BM_PlanQuery)->DenseRange(0, 3);
BENCHMARK(BM_PlanRemoveLocate)->DenseRange(0, 3);
BENCHMARK(BM_EnumerateAllPlans)->DenseRange(0, 3);

} // namespace

int main(int argc, char **argv) {
  // Cost-spread report: what the planner's choice is worth.
  std::printf("=== planner cost-model spread (best vs worst candidate, "
              "estimated cost) ===\n");
  for (const PlannerCase &C : plannerCases()) {
    QueryPlanner Planner(C.D, C.P);
    const RelationSpec &Spec = C.D.spec();
    ColumnSet DomS = ColumnSet::of(Spec.catalog().size() - 2);
    ColumnSet Out = Spec.allColumns() - DomS;
    auto Plans = Planner.enumerateQueryPlans(DomS, Out);
    double Best = 1e300, Worst = 0;
    for (const Plan &P : Plans) {
      double Cost = Planner.cost(P);
      Best = std::min(Best, Cost);
      Worst = std::max(Worst, Cost);
    }
    std::printf("  %-8s %2zu candidates, cost best=%.1f worst=%.1f "
                "(%.0fx spread)\n",
                C.Name, Plans.size(), Best, Worst,
                Worst / std::max(1.0, Best));
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
