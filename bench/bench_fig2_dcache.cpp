//===- bench/bench_fig2_dcache.cpp - dcache decomposition benchmark -----------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// The Figure 2 directory-tree relation under load: per-operation
/// throughput (path lookup via the global hashtable edge, ordered
/// directory listing via the TreeMap path, link/unlink) across
/// coarse and fine placements. Demonstrates the reason for the shared
/// node in Fig. 2(a): the hashtable edge turns two ordered lookups into
/// one hash probe.
///
//===----------------------------------------------------------------------===//

#include "BenchConfig.h"
#include "decomp/Shapes.h"
#include "lockplace/PlacementSchemes.h"
#include "runtime/ConcurrentRelation.h"
#include "support/Rng.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

using namespace crs;

namespace {

constexpr int64_t NumDirs = 128;
constexpr int NamesPerDir = 16;

std::string nameOf(int I) { return "f" + std::to_string(I); }

void populate(ConcurrentRelation &R) {
  const RelationSpec &Spec = R.spec();
  for (int64_t Dir = 0; Dir < NumDirs; ++Dir)
    for (int I = 0; I < NamesPerDir; ++I)
      R.insert(Tuple::of({{Spec.col("parent"), Value::ofInt(Dir)},
                          {Spec.col("name"), Value::ofString(nameOf(I))}}),
               Tuple::of({{Spec.col("child"),
                           Value::ofInt(Dir * 100 + I)}}));
}

/// Runs \p Op from \p Threads threads for \p OpsPerThread iterations;
/// returns ops/sec.
template <typename Fn>
double measure(unsigned Threads, uint64_t OpsPerThread, Fn Op) {
  std::vector<std::thread> Ts;
  auto Start = std::chrono::steady_clock::now();
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      Xoshiro256 Rng(77 + T);
      for (uint64_t I = 0; I < OpsPerThread; ++I)
        Op(Rng);
    });
  for (auto &T : Ts)
    T.join();
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  return static_cast<double>(OpsPerThread) * Threads / Secs;
}

} // namespace

int main() {
  auto Spec = std::make_shared<RelationSpec>(makeDCacheSpec());
  auto Decomp = std::make_shared<Decomposition>(
      makeDCacheDecomposition(*Spec));
  uint64_t Ops = benchFull() ? 200000 : 5000;
  std::vector<unsigned> Threads = benchThreadCounts();

  std::printf("=== Figure 2: dcache relation, per-operation throughput "
              "(ops/sec) ===\n\n");

  for (const char *PlacementName : {"coarse", "fine"}) {
    auto Placement = std::make_shared<LockPlacement>(
        std::string(PlacementName) == "coarse" ? makeCoarsePlacement(*Decomp)
                                               : makeFinePlacement(*Decomp));
    std::printf("--- placement: %s ---\n", PlacementName);
    std::vector<std::string> Header{"operation"};
    for (unsigned T : Threads)
      Header.push_back(std::to_string(T) + "T");
    Table Panel(Header);

    auto RunRow = [&](const char *Label, auto Op) {
      std::vector<std::string> Row{Label};
      for (unsigned T : Threads) {
        ConcurrentRelation R({Spec, Decomp, Placement, "dcache"});
        populate(R);
        Row.push_back(Table::fmt(measure(T, Ops, [&](Xoshiro256 &Rng) {
                                   Op(R, Rng);
                                 }),
                                 0));
      }
      Panel.addRow(Row);
    };

    RunRow("path lookup (parent,name)", [&](ConcurrentRelation &R,
                                            Xoshiro256 &Rng) {
      int64_t Dir = static_cast<int64_t>(Rng.nextBounded(NumDirs));
      int I = static_cast<int>(Rng.nextBounded(NamesPerDir));
      R.query(Tuple::of({{Spec->col("parent"), Value::ofInt(Dir)},
                         {Spec->col("name"), Value::ofString(nameOf(I))}}),
              Spec->cols({"child"}));
    });
    RunRow("directory listing (parent)", [&](ConcurrentRelation &R,
                                             Xoshiro256 &Rng) {
      int64_t Dir = static_cast<int64_t>(Rng.nextBounded(NumDirs));
      R.query(Tuple::of({{Spec->col("parent"), Value::ofInt(Dir)}}),
              Spec->cols({"name", "child"}));
    });
    RunRow("link/unlink pair", [&](ConcurrentRelation &R, Xoshiro256 &Rng) {
      int64_t Dir = static_cast<int64_t>(Rng.nextBounded(NumDirs));
      std::string N = "tmp" + std::to_string(Rng.nextBounded(64));
      Tuple Key = Tuple::of({{Spec->col("parent"), Value::ofInt(Dir)},
                             {Spec->col("name"), Value::ofString(N)}});
      if (R.insert(Key, Tuple::of({{Spec->col("child"),
                                    Value::ofInt(9999)}})))
        R.remove(Key);
    });

    Panel.print(std::cout);
    std::printf("\n");
  }
  std::printf("note: path lookup uses the (parent,name) hashtable edge —\n"
              "compare with the listing row, which pays the two-level\n"
              "TreeMap path; this is why Fig. 2(a) shares node y.\n");
  return 0;
}
