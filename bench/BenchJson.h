//===- bench/BenchJson.h - Machine-readable bench emission ------*- C++ -*-===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Optional JSON sidecar for the figure-reproduction benches: set
/// CRS_BENCH_JSON=<path> and the binary writes every panel it printed as
/// a machine-readable document (schema `crs-bench-fig5/1`) next to the
/// human tables. tools/bench_compare.py diffs two such documents, so CI
/// can keep a throughput trajectory across commits instead of eyeballing
/// table screenshots.
///
//===----------------------------------------------------------------------===//

#ifndef CRS_BENCH_BENCHJSON_H
#define CRS_BENCH_BENCHJSON_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace crs {

/// Accumulates bench panels and writes them as one JSON document.
class BenchJsonWriter {
public:
  /// Reads CRS_BENCH_JSON; an unset/empty value disables the writer and
  /// every call becomes a no-op.
  BenchJsonWriter() {
    if (const char *P = std::getenv("CRS_BENCH_JSON"))
      Path = P;
  }

  bool enabled() const { return !Path.empty(); }

  /// Starts a panel; subsequent addSeries calls land in it. \p Section
  /// names the bench section ("figure5", "api_modes", ...), \p Mix the
  /// operation-distribution label ("45-45-9-1").
  void beginPanel(const std::string &Section, const std::string &Mix) {
    if (!enabled())
      return;
    Panels.push_back({Section, Mix, {}});
  }

  /// Adds one series row: ops/sec per swept thread count plus the
  /// executor-health columns of the printed tables (negative values mean
  /// "not measured" — e.g. the handcoded baseline — and are emitted as
  /// null). \p PlanCacheHits / \p PlanCacheMisses are the registry's
  /// exact relation.plan_cache counters over the last run.
  void addSeries(const std::string &Name, const std::vector<double> &OpsPerSec,
                 double RestartsPerOp = -1, double PlanCacheHitRate = -1,
                 int64_t PlanCacheHits = -1, int64_t PlanCacheMisses = -1) {
    if (!enabled())
      return;
    Panels.back().Series.push_back({Name, OpsPerSec, RestartsPerOp,
                                    PlanCacheHitRate, PlanCacheHits,
                                    PlanCacheMisses});
  }

  /// Writes the document. \p Threads is the swept thread axis shared by
  /// all panels; \p Mode tags the run scale ("quick" / "full"). The git
  /// revision is taken from CRS_GIT_SHA, falling back to GITHUB_SHA
  /// (set by Actions), else null.
  bool write(const std::vector<unsigned> &Threads,
             const std::string &Mode) const {
    if (!enabled())
      return true;
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "BenchJson: cannot open %s\n", Path.c_str());
      return false;
    }
    std::fprintf(F, "{\n  \"schema\": \"crs-bench-fig5/1\",\n");
    const char *Sha = std::getenv("CRS_GIT_SHA");
    if (!Sha)
      Sha = std::getenv("GITHUB_SHA");
    if (Sha)
      std::fprintf(F, "  \"git_sha\": \"%s\",\n", escaped(Sha).c_str());
    else
      std::fprintf(F, "  \"git_sha\": null,\n");
    std::fprintf(F, "  \"mode\": \"%s\",\n  \"threads\": [",
                 escaped(Mode).c_str());
    for (size_t I = 0; I < Threads.size(); ++I)
      std::fprintf(F, "%s%u", I ? ", " : "", Threads[I]);
    std::fprintf(F, "],\n  \"panels\": [\n");
    for (size_t P = 0; P < Panels.size(); ++P) {
      const PanelOut &Panel = Panels[P];
      std::fprintf(F,
                   "    {\n      \"section\": \"%s\",\n      \"mix\": "
                   "\"%s\",\n      \"series\": [\n",
                   escaped(Panel.Section).c_str(), escaped(Panel.Mix).c_str());
      for (size_t S = 0; S < Panel.Series.size(); ++S) {
        const SeriesOut &Row = Panel.Series[S];
        std::fprintf(F, "        {\"name\": \"%s\", \"ops_per_sec\": [",
                     escaped(Row.Name).c_str());
        for (size_t I = 0; I < Row.OpsPerSec.size(); ++I)
          std::fprintf(F, "%s%.1f", I ? ", " : "", Row.OpsPerSec[I]);
        std::fprintf(F, "], \"restarts_per_op\": ");
        if (Row.RestartsPerOp < 0)
          std::fprintf(F, "null");
        else
          std::fprintf(F, "%.6f", Row.RestartsPerOp);
        std::fprintf(F, ", \"plan_cache_hit\": ");
        if (Row.PlanCacheHitRate < 0)
          std::fprintf(F, "null");
        else
          std::fprintf(F, "%.4f", Row.PlanCacheHitRate);
        std::fprintf(F, ", \"plan_cache_hits\": ");
        if (Row.PlanCacheHits < 0)
          std::fprintf(F, "null");
        else
          std::fprintf(F, "%lld", static_cast<long long>(Row.PlanCacheHits));
        std::fprintf(F, ", \"plan_cache_misses\": ");
        if (Row.PlanCacheMisses < 0)
          std::fprintf(F, "null");
        else
          std::fprintf(F, "%lld",
                       static_cast<long long>(Row.PlanCacheMisses));
        std::fprintf(F, "}%s\n", S + 1 < Panel.Series.size() ? "," : "");
      }
      std::fprintf(F, "      ]\n    }%s\n",
                   P + 1 < Panels.size() ? "," : "");
    }
    std::fprintf(F, "  ]\n}\n");
    std::fclose(F);
    std::fprintf(stderr, "BenchJson: wrote %zu panels to %s\n", Panels.size(),
                 Path.c_str());
    return true;
  }

private:
  struct SeriesOut {
    std::string Name;
    std::vector<double> OpsPerSec;
    double RestartsPerOp;
    double PlanCacheHitRate;
    int64_t PlanCacheHits;
    int64_t PlanCacheMisses;
  };
  struct PanelOut {
    std::string Section;
    std::string Mix;
    std::vector<SeriesOut> Series;
  };

  static std::string escaped(const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out.push_back('\\');
      Out.push_back(C);
    }
    return Out;
  }

  std::string Path;
  std::vector<PanelOut> Panels;
};

} // namespace crs

#endif // CRS_BENCH_BENCHJSON_H
