//===- bench/bench_container_micro.cpp - Container micro-benchmarks -----------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Raw operation costs of the container substrate — the numbers behind
/// the planner's cost model (plan/CostModel.h): hash vs ordered lookup,
/// insert/erase, and full scans, for each Figure 1 container kind, at
/// several sizes. Run with --benchmark_filter=... to focus.
///
//===----------------------------------------------------------------------===//

#include "containers/ConcurrentHashMap.h"
#include "containers/ConcurrentSkipListMap.h"
#include "containers/CowArrayMap.h"
#include "containers/HashMap.h"
#include "containers/TreeMap.h"
#include "support/Hashing.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace crs;

namespace {

struct IntHash {
  uint64_t operator()(int64_t V) const {
    return mix64(static_cast<uint64_t>(V));
  }
};
struct IntLess {
  bool operator()(int64_t A, int64_t B) const { return A < B; }
};

template <typename Map> void fill(Map &M, int64_t N) {
  for (int64_t I = 0; I < N; ++I)
    M.insertOrAssign(I, I);
}

template <typename Map> void benchLookup(benchmark::State &State) {
  Map M;
  int64_t N = State.range(0);
  fill(M, N);
  Xoshiro256 Rng(7);
  int64_t Out;
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        M.lookup(static_cast<int64_t>(Rng.nextBounded(N)), Out));
  }
}

template <typename Map> void benchInsertErase(benchmark::State &State) {
  Map M;
  int64_t N = State.range(0);
  fill(M, N);
  Xoshiro256 Rng(8);
  for (auto _ : State) {
    int64_t K = N + static_cast<int64_t>(Rng.nextBounded(64));
    M.insertOrAssign(K, K);
    M.erase(K);
  }
}

template <typename Map> void benchScan(benchmark::State &State) {
  Map M;
  fill(M, State.range(0));
  for (auto _ : State) {
    int64_t Sum = 0;
    M.scan([&](const int64_t &K, const int64_t &) {
      Sum += K;
      return true;
    });
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}

using HM = HashMap<int64_t, int64_t, IntHash>;
using TM = TreeMap<int64_t, int64_t, IntLess>;
using CHM = ConcurrentHashMap<int64_t, int64_t, IntHash>;
using CSL = ConcurrentSkipListMap<int64_t, int64_t, IntLess>;
using COW = CowArrayMap<int64_t, int64_t, IntLess>;

void BM_Lookup_HashMap(benchmark::State &S) { benchLookup<HM>(S); }
void BM_Lookup_TreeMap(benchmark::State &S) { benchLookup<TM>(S); }
void BM_Lookup_ConcurrentHashMap(benchmark::State &S) { benchLookup<CHM>(S); }
void BM_Lookup_ConcurrentSkipList(benchmark::State &S) { benchLookup<CSL>(S); }
void BM_Lookup_CowArrayMap(benchmark::State &S) { benchLookup<COW>(S); }

void BM_Update_HashMap(benchmark::State &S) { benchInsertErase<HM>(S); }
void BM_Update_TreeMap(benchmark::State &S) { benchInsertErase<TM>(S); }
void BM_Update_ConcurrentHashMap(benchmark::State &S) {
  benchInsertErase<CHM>(S);
}
void BM_Update_ConcurrentSkipList(benchmark::State &S) {
  benchInsertErase<CSL>(S);
}
void BM_Update_CowArrayMap(benchmark::State &S) { benchInsertErase<COW>(S); }

void BM_Scan_HashMap(benchmark::State &S) { benchScan<HM>(S); }
void BM_Scan_TreeMap(benchmark::State &S) { benchScan<TM>(S); }
void BM_Scan_ConcurrentHashMap(benchmark::State &S) { benchScan<CHM>(S); }
void BM_Scan_ConcurrentSkipList(benchmark::State &S) { benchScan<CSL>(S); }
void BM_Scan_CowArrayMap(benchmark::State &S) { benchScan<COW>(S); }

#define CRS_SIZES RangeMultiplier(16)->Range(16, 4096)

BENCHMARK(BM_Lookup_HashMap)->CRS_SIZES;
BENCHMARK(BM_Lookup_TreeMap)->CRS_SIZES;
BENCHMARK(BM_Lookup_ConcurrentHashMap)->CRS_SIZES;
BENCHMARK(BM_Lookup_ConcurrentSkipList)->CRS_SIZES;
BENCHMARK(BM_Lookup_CowArrayMap)->CRS_SIZES;
BENCHMARK(BM_Update_HashMap)->CRS_SIZES;
BENCHMARK(BM_Update_TreeMap)->CRS_SIZES;
BENCHMARK(BM_Update_ConcurrentHashMap)->CRS_SIZES;
BENCHMARK(BM_Update_ConcurrentSkipList)->CRS_SIZES;
// CowArrayMap updates are O(n) copies — measure but cap the size.
BENCHMARK(BM_Update_CowArrayMap)->RangeMultiplier(16)->Range(16, 256);
BENCHMARK(BM_Scan_HashMap)->CRS_SIZES;
BENCHMARK(BM_Scan_TreeMap)->CRS_SIZES;
BENCHMARK(BM_Scan_ConcurrentHashMap)->CRS_SIZES;
BENCHMARK(BM_Scan_ConcurrentSkipList)->CRS_SIZES;
BENCHMARK(BM_Scan_CowArrayMap)->CRS_SIZES;

} // namespace

BENCHMARK_MAIN();
