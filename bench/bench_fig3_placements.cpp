//===- bench/bench_fig3_placements.cpp - Lock placement ablation --------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// The Figure 3 placement spectrum, isolated: one decomposition
/// structure (split, the paper's strongest) with the container choices
/// held fixed, sweeping only the lock placement — coarse ψ1, fine ψ2,
/// striped ψ3, speculative ψ4 — across the four Figure 5 workloads.
/// This separates the synthesis dimensions: Figure 5 varies everything
/// at once; this ablation shows what the *placement alone* buys.
///
//===----------------------------------------------------------------------===//

#include "BenchConfig.h"
#include "autotune/Autotuner.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace crs;

int main() {
  using CK = ContainerKind;
  using PS = PlacementSchemeKind;
  struct Row {
    const char *Name;
    GraphVariant Variant;
  };
  const Row Rows[] = {
      {"coarse (psi1)", {GraphShape::Split, PS::Coarse, 1,
                         CK::ConcurrentHashMap, CK::HashMap}},
      {"fine (psi2)", {GraphShape::Split, PS::Fine, 1,
                       CK::ConcurrentHashMap, CK::HashMap}},
      {"striped-1024 (psi3)", {GraphShape::Split, PS::Striped, 1024,
                               CK::ConcurrentHashMap, CK::HashMap}},
      {"speculative-1024 (psi4)", {GraphShape::Split, PS::Speculative, 1024,
                                   CK::ConcurrentHashMap, CK::HashMap}},
  };

  std::vector<unsigned> Threads = benchThreadCounts();
  KeySpace Keys = benchKeySpace();

  std::printf("=== Figure 3 ablation: lock placements on the split "
              "decomposition (ConcurrentHashMap/HashMap) ===\n\n");

  for (const OpMix &Mix : Fig5Workloads) {
    std::printf("--- Operation Distribution: %s ---\n", Mix.str().c_str());
    std::vector<std::string> Header{"placement"};
    for (unsigned T : Threads)
      Header.push_back(std::to_string(T) + "T");
    Table Panel(Header);
    for (const Row &R : Rows) {
      RepresentationConfig Config = makeGraphRepresentation(R.Variant);
      if (!Config.Placement) {
        Panel.addRow({R.Name, "(illegal)"});
        continue;
      }
      std::vector<std::string> Cells{R.Name};
      for (unsigned T : Threads) {
        auto Make = [&]() -> std::unique_ptr<GraphTarget> {
          struct Owning : RelationGraphTarget {
            std::unique_ptr<ConcurrentRelation> Rel;
            explicit Owning(std::unique_ptr<ConcurrentRelation> Rl)
                : RelationGraphTarget(*Rl), Rel(std::move(Rl)) {}
          };
          return std::make_unique<Owning>(
              std::make_unique<ConcurrentRelation>(Config));
        };
        ThroughputResult TR = runThroughput(Make, Mix, Keys, benchParams(T));
        Cells.push_back(Table::fmt(TR.OpsPerSec, 0));
      }
      Panel.addRow(Cells);
    }
    Panel.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
