//===- bench/bench_striping.cpp - Lock striping ablation (§4.4) ---------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// The §4.4 trade-off, measured: "by increasing the value k we can
/// reduce lock contention to arbitrarily low levels, at the cost of
/// making operations such as iteration that access the entire container
/// more expensive." We sweep the striping factor on the split
/// decomposition under (a) a point-operation workload, where higher k
/// should help (or at least not hurt), and (b) a remove-heavy workload
/// whose locate plans take all k stripes on the weight edges — the
/// iteration-style cost that grows with k.
///
//===----------------------------------------------------------------------===//

#include "BenchConfig.h"
#include "autotune/Autotuner.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace crs;

int main() {
  const uint32_t Factors[] = {1, 4, 16, 64, 256, 1024};
  const OpMix PointHeavy{45, 45, 9, 1};  // lookups dominate
  const OpMix RemoveHeavy{0, 0, 50, 50}; // mutation locate plans

  KeySpace Keys = benchKeySpace();
  std::vector<unsigned> Threads = benchThreadCounts();

  std::printf("=== §4.4 ablation: striping factor k on "
              "split/ConcurrentHashMap/TreeMap ===\n\n");

  for (const OpMix &Mix : {PointHeavy, RemoveHeavy}) {
    std::printf("--- workload %s ---\n", Mix.str().c_str());
    std::vector<std::string> Header{"k"};
    for (unsigned T : Threads)
      Header.push_back(std::to_string(T) + "T");
    Table Panel(Header);
    for (uint32_t K : Factors) {
      RepresentationConfig Config = makeGraphRepresentation(
          {GraphShape::Split, PlacementSchemeKind::Striped, K,
           ContainerKind::ConcurrentHashMap, ContainerKind::TreeMap});
      if (!Config.Placement)
        continue;
      std::vector<std::string> Row{std::to_string(K)};
      for (unsigned T : Threads) {
        auto Make = [&]() -> std::unique_ptr<GraphTarget> {
          struct Owning : RelationGraphTarget {
            std::unique_ptr<ConcurrentRelation> Rel;
            explicit Owning(std::unique_ptr<ConcurrentRelation> R)
                : RelationGraphTarget(*R), Rel(std::move(R)) {}
          };
          return std::make_unique<Owning>(
              std::make_unique<ConcurrentRelation>(Config));
        };
        Row.push_back(Table::fmt(
            runThroughput(Make, Mix, Keys, benchParams(T)).OpsPerSec, 0));
      }
      Panel.addRow(Row);
    }
    Panel.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
