//===- bench/bench_fig1_taxonomy.cpp - Figure 1 reproduction ------------------===//
//
// Part of the CRS project: a reproduction of "Concurrent Data Representation
// Synthesis" (Hawkins et al., PLDI 2012). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 1 — the taxonomy of container concurrency-safety
/// and consistency — from the implemented container traits, and
/// *empirically validates* the concurrent cells: for every container
/// whose L/W and W/W cells claim safety, a two-thread probe hammers the
/// pair of operations and checks the final state; for weakly-consistent
/// scans, a probe demonstrates that a scan concurrent with inserts can
/// miss updates while a snapshot scan cannot tear.
///
//===----------------------------------------------------------------------===//

#include "containers/ConcurrentHashMap.h"
#include "containers/ConcurrentSkipListMap.h"
#include "containers/ContainerTraits.h"
#include "containers/CowArrayMap.h"
#include "support/Hashing.h"
#include "support/Table.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <iostream>
#include <thread>

using namespace crs;

namespace {

struct IntHash {
  uint64_t operator()(int64_t V) const {
    return mix64(static_cast<uint64_t>(V));
  }
};
struct IntLess {
  bool operator()(int64_t A, int64_t B) const { return A < B; }
};

/// Lookup/write + write/write probe: concurrent inserts on interleaved
/// keys with a racing reader; validates the final contents.
template <typename Map> bool probeReadWrite(Map &M) {
  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    for (int64_t I = 0; I < 20000; ++I)
      M.insertOrAssign(I % 512, I);
  });
  std::thread Writer2([&] {
    for (int64_t I = 0; I < 20000; ++I)
      M.insertOrAssign(512 + (I % 512), I);
  });
  std::thread Reader([&] {
    int64_t Out;
    while (!Stop.load(std::memory_order_acquire))
      M.lookup(7, Out);
  });
  Writer.join();
  Writer2.join();
  Stop.store(true, std::memory_order_release);
  Reader.join();
  return M.size() == 1024;
}

/// Scan/write probe. A writer inserts odd keys in one ascending pass and
/// removes them in one ascending pass, over and over. Any point-in-time
/// state therefore holds a *contiguous* run of odd keys (an ascending
/// prefix during inserts, an ascending suffix during removals). A scan
/// corresponding to a single instant — snapshot iteration — can thus
/// never observe a *gap*: odd keys k1 < k2 < k3 with k1, k3 seen and k2
/// not seen within the same scan. Weakly consistent iteration can.
/// Returns the number of scans that observed a gap.
template <typename Map> uint64_t probeWeakScan(Map &M) {
  for (int64_t I = 0; I < 2048; I += 2)
    M.insertOrAssign(I, I); // even keys: fixed background
  std::atomic<bool> Stop{false};
  uint64_t Anomalies = 0;
  std::thread Writer([&] {
    for (int64_t Round = 0; Round < 400; ++Round) {
      for (int64_t I = 1; I < 2048; I += 2)
        M.insertOrAssign(I, I);
      for (int64_t I = 1; I < 2048; I += 2)
        M.erase(I);
    }
    Stop.store(true, std::memory_order_release);
  });
  std::vector<int64_t> Odds;
  while (!Stop.load(std::memory_order_acquire)) {
    Odds.clear();
    M.scan([&](const int64_t &K, const int64_t &) {
      if (K % 2 == 1)
        Odds.push_back(K);
      return true;
    });
    std::sort(Odds.begin(), Odds.end());
    for (size_t I = 1; I < Odds.size(); ++I)
      if (Odds[I] - Odds[I - 1] > 2) { // a missing odd key in between
        ++Anomalies;
        break;
      }
  }
  Writer.join();
  return Anomalies;
}

std::string cell(PairSafety S) { return pairSafetyName(S); }

} // namespace

int main() {
  std::printf("=== Figure 1: concurrency safety of the container "
              "taxonomy ===\n\n");

  Table T({"Data Structure", "L/L,L/S,S/S", "L/W", "S/W", "W/W",
           "sorted scan"});
  for (ContainerKind K : AllContainerKinds) {
    if (K == ContainerKind::SingletonCell)
      continue; // dotted edges; not part of the paper's table
    ContainerTraits Tr = containerTraits(K);
    T.addRow({containerKindName(K), cell(Tr.LookupLookup),
              cell(Tr.LookupWrite), cell(Tr.ScanWrite), cell(Tr.WriteWrite),
              Tr.SortedScan ? "yes" : "no"});
  }
  T.print(std::cout);

  std::printf("\n--- empirical validation of the concurrent rows ---\n");
  {
    ConcurrentHashMap<int64_t, int64_t, IntHash> M(1024);
    std::printf("ConcurrentHashMap     L/W + W/W probe: %s\n",
                probeReadWrite(M) ? "consistent" : "CORRUPTED");
  }
  {
    ConcurrentSkipListMap<int64_t, int64_t, IntLess> M;
    std::printf("ConcurrentSkipListMap L/W + W/W probe: %s\n",
                probeReadWrite(M) ? "consistent" : "CORRUPTED");
  }
  {
    CowArrayMap<int64_t, int64_t, IntLess> M;
    std::printf("CowArrayMap           L/W + W/W probe: %s\n",
                probeReadWrite(M) ? "consistent" : "CORRUPTED");
  }
  {
    ConcurrentHashMap<int64_t, int64_t, IntHash> M(1024);
    uint64_t A = probeWeakScan(M);
    std::printf("ConcurrentHashMap     scan consistency: %llu anomalies "
                "(weakly consistent: anomalies expected under load)\n",
                static_cast<unsigned long long>(A));
  }
  {
    CowArrayMap<int64_t, int64_t, IntLess> M;
    uint64_t A = probeWeakScan(M);
    std::printf("CowArrayMap           scan consistency: %llu anomalies "
                "(snapshot iteration: must be 0)\n",
                static_cast<unsigned long long>(A));
    if (A != 0)
      return 1;
  }
  return 0;
}
